//! Leave-one-out cross-validation driver (paper Section III-C).
//!
//! With N benchmarks, each is attacked by a model trained on the other
//! N−1, keeping training and testing strictly separated — the key
//! methodological fix over the prior work [5].
//!
//! Per-design samples are extracted **once** and shared across folds: a
//! design's sample stream is seeded by its name (see
//! [`crate::samples::view_sample_seed`]), so its samples depend only on the
//! run seed and the fold's neighborhood radius, never on which other
//! designs are in the fold. Each fold's training set is then assembled by
//! concatenating the cached per-design sets in view order — bit-identical
//! to regenerating them from scratch (the naive path re-extracted features
//! for N−1 of the N designs per fold, N(N−1) extractions instead of at
//! most one per distinct (design, radius) pair).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sm_layout::SplitView;
use sm_ml::parallel::par_map;
use sm_ml::Dataset;

use crate::attack::{AttackConfig, ScoreOptions, ScoredView, TrainOptions, TrainedAttack};
use crate::checkpoint::{
    Checkpoint, CheckpointError, CheckpointSpec, Fingerprint, Resume, RunState, XvalState,
};
use crate::error::AttackError;
use crate::loc::{LocCurve, LocCurveBuilder};
use crate::neighborhood::neighborhood_radius;
use crate::samples::{generate_view_samples, sample_base_seed, view_sample_seed};

/// One fold's outcome: the held-out design, its scoring, and timings.
#[derive(Debug, Clone)]
pub struct FoldResult {
    /// Name of the held-out (attacked) design.
    pub test_name: String,
    /// Scoring of the held-out design.
    pub scored: ScoredView,
    /// Wall-clock training time of this fold's model (sample-set assembly
    /// plus ensemble fitting; per-design sample extraction is shared
    /// across folds and not attributed to any one of them).
    pub train_time: Duration,
    /// Wall-clock scoring time.
    pub score_time: Duration,
}

/// Runs leave-one-out cross-validation of `config` over `views`.
///
/// Folds are independent, so they run in parallel per
/// `config.parallelism`; results come back in view order and are
/// bit-identical to a sequential run (per-fold wall-clock timings may
/// differ under contention).
///
/// # Errors
///
/// Propagates the first fold failure; returns
/// [`AttackError::NoTrainingData`] if fewer than two views are supplied.
///
/// # Examples
///
/// ```
/// use sm_attack::attack::{AttackConfig, ScoreOptions};
/// use sm_attack::xval::leave_one_out;
/// use sm_layout::{SplitLayer, Suite};
///
/// let views = Suite::ispd2011_like(0.02)?.split_all(SplitLayer::new(8)?);
/// let folds = leave_one_out(&AttackConfig::imp9(), &views, &ScoreOptions::default())?;
/// assert_eq!(folds.len(), views.len());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn leave_one_out(
    config: &AttackConfig,
    views: &[SplitView],
    score_options: &ScoreOptions,
) -> Result<Vec<FoldResult>, AttackError> {
    leave_one_out_opt(config, views, score_options, TrainOptions::default())
}

/// [`leave_one_out`] with explicit [`TrainOptions`]. The options never
/// change the fold results, only training wall-clock.
///
/// # Errors
///
/// Same contract as [`leave_one_out`].
pub fn leave_one_out_opt(
    config: &AttackConfig,
    views: &[SplitView],
    score_options: &ScoreOptions,
    train_options: TrainOptions,
) -> Result<Vec<FoldResult>, AttackError> {
    if views.len() < 2 {
        return Err(AttackError::NoTrainingData);
    }
    // Fold radii first: the radius is a quantile over the fold's N−1
    // training designs, so it can differ between folds, and a design's
    // samples depend on it (it bounds the negative-candidate pool).
    let radii: Vec<Option<i64>> = (0..views.len())
        .map(|t| {
            if config.scalable {
                let train: Vec<&SplitView> = views
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != t)
                    .map(|(_, v)| v)
                    .collect();
                neighborhood_radius(&train, config.neighborhood_quantile)
            } else {
                None
            }
        })
        .collect();

    // Extract each distinct (design, radius) sample set exactly once, in
    // parallel. `base` reproduces the seed draw `TrainedAttack::train`
    // performs, so the cached sets are bit-identical to the uncached path.
    let base = sample_base_seed(&mut ChaCha8Rng::seed_from_u64(config.seed));
    let mut keys: Vec<(usize, Option<i64>)> = Vec::new();
    for (t, radius) in radii.iter().enumerate() {
        for d in 0..views.len() {
            if d != t && !keys.contains(&(d, *radius)) {
                keys.push((d, *radius));
            }
        }
    }
    let extracted: Vec<Dataset> = par_map(config.parallelism, keys.len(), |k| {
        let (d, radius) = keys[k];
        generate_view_samples(
            &views[d],
            &config.features,
            config.sample_options(radius),
            None,
            view_sample_seed(base, &views[d].name),
        )
    });
    let cache: HashMap<(usize, Option<i64>), &Dataset> =
        keys.iter().copied().zip(extracted.iter()).collect();

    par_map(config.parallelism, views.len(), |t| {
        let test = &views[t];
        let t0 = Instant::now();
        let mut samples = Dataset::new(config.features.len());
        for d in 0..views.len() {
            if d != t {
                samples
                    .extend_from(cache[&(d, radii[t])])
                    .expect("cached sample sets share the config's feature arity");
            }
        }
        let model = TrainedAttack::from_samples(config, samples, radii[t], train_options)?;
        let train_time = t0.elapsed();
        let t1 = Instant::now();
        let scored = model.score(test, score_options);
        let score_time = t1.elapsed();
        Ok(FoldResult {
            test_name: test.name.clone(),
            scored,
            train_time,
            score_time,
        })
    })
    .into_iter()
    .collect()
}

/// Streaming leave-one-out driver: visits each fold in view order and
/// hands its [`FoldResult`] to `visit`, dropping it before the next fold
/// is trained — at most one fold's model, sample set and scored view are
/// live at a time.
///
/// This is the bounded-memory path for paper-scale runs (`SM_SCALE >= 10`,
/// where a single scored view is hundreds of megabytes and
/// [`leave_one_out`] would hold all N at once plus the per-design sample
/// cache). The trade-off is recomputation: each fold re-extracts its N−1
/// training sample sets instead of sharing a cache, which is exactly
/// [`TrainedAttack::train_opt`] — so every fold is bit-identical to the
/// batch driver's output (proven by the cached-vs-uncached parity test and
/// the streaming parity test below).
///
/// # Errors
///
/// Propagates the first fold failure; returns
/// [`AttackError::NoTrainingData`] if fewer than two views are supplied.
pub fn for_each_fold<F>(
    config: &AttackConfig,
    views: &[SplitView],
    score_options: &ScoreOptions,
    train_options: TrainOptions,
    mut visit: F,
) -> Result<(), AttackError>
where
    F: FnMut(FoldResult),
{
    if views.len() < 2 {
        return Err(AttackError::NoTrainingData);
    }
    for t in 0..views.len() {
        visit(run_fold(config, views, t, score_options, train_options)?);
    }
    Ok(())
}

/// Trains and scores fold `t` from scratch — the shared unit of work of
/// [`for_each_fold`] and [`for_each_fold_resumable`].
fn run_fold(
    config: &AttackConfig,
    views: &[SplitView],
    t: usize,
    score_options: &ScoreOptions,
    train_options: TrainOptions,
) -> Result<FoldResult, AttackError> {
    let test = &views[t];
    let train: Vec<&SplitView> = views
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != t)
        .map(|(_, v)| v)
        .collect();
    let t0 = Instant::now();
    let model = TrainedAttack::train_opt(config, &train, None, train_options)?;
    let train_time = t0.elapsed();
    let t1 = Instant::now();
    let scored = model.score(test, score_options);
    let score_time = t1.elapsed();
    Ok(FoldResult {
        test_name: test.name.clone(),
        scored,
        train_time,
        score_time,
    })
}

/// Outcome of a resumable cross-validation sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum XvalOutcome {
    /// Every fold ran; the checkpoint file has been removed.
    Complete {
        /// Averaged LoC curve over all folds (what an uninterrupted
        /// [`LocCurveBuilder`] sweep over [`for_each_fold`] produces, bit
        /// for bit).
        curve: LocCurve,
        /// Total folds.
        folds: usize,
    },
    /// `should_stop` turned true at a fold boundary; the final checkpoint
    /// is on disk.
    Interrupted {
        /// Folds completed and persisted.
        folds_done: usize,
        /// Total folds of the run.
        folds_total: usize,
    },
}

/// Crash-safe [`for_each_fold`]: checkpoints the fold cursor and the
/// partial [`LocCurveBuilder`] accumulators after every fold, resuming
/// from the last completed fold after a crash.
///
/// The checkpoint granularity is one **fold** — training is an in-memory
/// ensemble fit and is not itself checkpointable, so a process killed
/// mid-fold resumes from that fold's start and re-trains it. Completed
/// folds are never recomputed, and the final curve is bit-identical to an
/// uninterrupted sweep because [`LocCurveBuilder`] accumulates per-view
/// sums in fold order and its `f64` state round-trips exactly through the
/// checkpoint (`serde_json` shortest-roundtrip printing).
///
/// `visit` observes each fold as it completes — only newly computed folds
/// on a resume, not replayed ones.
///
/// # Errors
///
/// Typed [`CheckpointError`]s: checkpoint i/o or corruption (a refuse, not
/// a partial resume), fingerprint mismatch against a foreign checkpoint,
/// [`CheckpointError::Exists`] when starting fresh over a leftover
/// checkpoint, [`CheckpointError::Unsupported`] for explicit
/// `score_options.targets`, and fold failures as
/// [`CheckpointError::Attack`] (including
/// [`AttackError::NoTrainingData`] for fewer than two views).
#[allow(clippy::too_many_arguments)]
pub fn for_each_fold_resumable<F>(
    config: &AttackConfig,
    views: &[SplitView],
    score_options: &ScoreOptions,
    train_options: TrainOptions,
    spec: &CheckpointSpec,
    resume: Resume,
    should_stop: &dyn Fn() -> bool,
    mut visit: F,
) -> Result<XvalOutcome, CheckpointError>
where
    F: FnMut(FoldResult),
{
    if views.len() < 2 {
        return Err(CheckpointError::Attack(AttackError::NoTrainingData));
    }
    if score_options.targets.is_some() {
        return Err(CheckpointError::Unsupported(
            "explicit score targets (cross-validation scores whole views)",
        ));
    }
    let fingerprint = Fingerprint::for_xval(config, views, score_options);
    let (folds_done, mut fold_names, mut builder) = match (resume, spec.path.exists()) {
        (Resume::Fresh, true) => return Err(CheckpointError::Exists(spec.path.clone())),
        (_, false) => (0, Vec::new(), LocCurveBuilder::new()),
        (Resume::IfPresent, true) => {
            let checkpoint = Checkpoint::load(&spec.path)?;
            fingerprint.verify(&checkpoint.fingerprint)?;
            let state = match checkpoint.state {
                RunState::Xval(x) => x,
                RunState::Scoring(_) => {
                    return Err(CheckpointError::Mismatch {
                        field: "state kind",
                        expected: "xval".into(),
                        found: "scoring".into(),
                    })
                }
            };
            let expected: Vec<&str> = views[..state.folds_done]
                .iter()
                .map(|v| v.name.as_str())
                .collect();
            if state.fold_names != expected {
                return Err(CheckpointError::Mismatch {
                    field: "completed folds",
                    expected: expected.join(","),
                    found: state.fold_names.join(","),
                });
            }
            (state.folds_done, state.fold_names, state.curve)
        }
    };
    for t in folds_done..views.len() {
        let fold = run_fold(config, views, t, score_options, train_options)?;
        builder.add_view(&fold.scored);
        fold_names.push(fold.test_name.clone());
        let done = t + 1;
        visit(fold);
        Checkpoint {
            fingerprint: fingerprint.clone(),
            state: RunState::Xval(XvalState {
                folds_done: done,
                fold_names: fold_names.clone(),
                curve: builder.clone(),
            }),
        }
        .save(&spec.path)?;
        if done < views.len() && should_stop() {
            return Ok(XvalOutcome::Interrupted {
                folds_done: done,
                folds_total: views.len(),
            });
        }
    }
    match std::fs::remove_file(&spec.path) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(CheckpointError::Io(e)),
    }
    Ok(XvalOutcome::Complete {
        curve: builder.finish(),
        folds: views.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_layout::{SplitLayer, Suite};

    #[test]
    fn streaming_folds_match_the_batch_driver() {
        let views = Suite::ispd2011_like(0.02)
            .expect("valid scale")
            .split_all(SplitLayer::new(8).expect("valid"));
        let config = AttackConfig::imp9();
        let opts = ScoreOptions::default();
        let batch = leave_one_out(&config, &views, &opts).expect("batch xval runs");
        let mut streamed = Vec::new();
        for_each_fold(&config, &views, &opts, TrainOptions::default(), |fold| {
            streamed.push((fold.test_name, fold.scored));
        })
        .expect("streaming xval runs");
        assert_eq!(streamed.len(), batch.len());
        for (b, (name, scored)) in batch.iter().zip(&streamed) {
            assert_eq!(&b.test_name, name);
            assert_eq!(&b.scored, scored, "fold {name} diverged");
        }
    }

    #[test]
    fn streaming_driver_rejects_too_few_views() {
        let views = Suite::ispd2011_like(0.02)
            .expect("valid scale")
            .split_all(SplitLayer::new(8).expect("valid"));
        let one = vec![views[0].clone()];
        let res = for_each_fold(
            &AttackConfig::imp9(),
            &one,
            &ScoreOptions::default(),
            TrainOptions::default(),
            |_| panic!("no fold should be produced"),
        );
        assert!(matches!(res, Err(AttackError::NoTrainingData)));
    }

    #[test]
    fn folds_cover_every_design_once() {
        let views = Suite::ispd2011_like(0.02)
            .expect("valid scale")
            .split_all(SplitLayer::new(8).expect("valid"));
        let folds = leave_one_out(&AttackConfig::imp9(), &views, &ScoreOptions::default())
            .expect("xval runs");
        let names: Vec<&str> = folds.iter().map(|f| f.test_name.as_str()).collect();
        assert_eq!(names, ["sb1", "sb5", "sb10", "sb12", "sb18"]);
        for (f, v) in folds.iter().zip(&views) {
            assert_eq!(f.scored.slots.len(), v.num_vpins());
        }
    }

    #[test]
    fn too_few_views_is_an_error() {
        let views = Suite::ispd2011_like(0.02)
            .expect("valid scale")
            .split_all(SplitLayer::new(8).expect("valid"));
        let one = vec![views[0].clone()];
        assert!(matches!(
            leave_one_out(&AttackConfig::imp9(), &one, &ScoreOptions::default()),
            Err(AttackError::NoTrainingData)
        ));
    }

    /// The per-design sample cache must be invisible in results: every
    /// fold's scoring equals training that fold from scratch with
    /// `TrainedAttack::train` (the uncached path), bit for bit. Covers
    /// radius-bearing (`Imp`), unrestricted (`ML`) and Y-limited configs,
    /// whose sample pools are shaped differently per fold.
    #[test]
    fn cached_fold_assembly_is_bit_identical_to_uncached_training() {
        for (split, config) in [
            (6u8, AttackConfig::imp9()),
            (6u8, AttackConfig::ml9()),
            (8u8, AttackConfig::imp9().with_y_limit()),
        ] {
            let views = Suite::ispd2011_like(0.02)
                .expect("valid scale")
                .split_all(SplitLayer::new(split).expect("valid"));
            let folds =
                leave_one_out(&config, &views, &ScoreOptions::default()).expect("cached xval runs");
            for (t, fold) in folds.iter().enumerate() {
                let train: Vec<&SplitView> = views
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != t)
                    .map(|(_, v)| v)
                    .collect();
                let model = TrainedAttack::train(&config, &train, None).expect("uncached train");
                let scored = model.score(&views[t], &ScoreOptions::default());
                assert_eq!(
                    fold.scored, scored,
                    "{} fold {} diverged from the uncached path",
                    config.name, fold.test_name
                );
            }
        }
    }
}
