//! Leave-one-out cross-validation driver (paper Section III-C).
//!
//! With N benchmarks, each is attacked by a model trained on the other
//! N−1, keeping training and testing strictly separated — the key
//! methodological fix over the prior work [5].

use std::time::{Duration, Instant};

use sm_layout::SplitView;
use sm_ml::parallel::par_map;

use crate::attack::{AttackConfig, ScoreOptions, ScoredView, TrainedAttack};
use crate::error::AttackError;

/// One fold's outcome: the held-out design, its scoring, and timings.
#[derive(Debug, Clone)]
pub struct FoldResult {
    /// Name of the held-out (attacked) design.
    pub test_name: String,
    /// Scoring of the held-out design.
    pub scored: ScoredView,
    /// Wall-clock training time of this fold's model.
    pub train_time: Duration,
    /// Wall-clock scoring time.
    pub score_time: Duration,
}

/// Runs leave-one-out cross-validation of `config` over `views`.
///
/// Folds are independent, so they run in parallel per
/// `config.parallelism`; results come back in view order and are
/// bit-identical to a sequential run (per-fold wall-clock timings may
/// differ under contention).
///
/// # Errors
///
/// Propagates the first fold failure; returns
/// [`AttackError::NoTrainingData`] if fewer than two views are supplied.
///
/// # Examples
///
/// ```
/// use sm_attack::attack::{AttackConfig, ScoreOptions};
/// use sm_attack::xval::leave_one_out;
/// use sm_layout::{SplitLayer, Suite};
///
/// let views = Suite::ispd2011_like(0.02)?.split_all(SplitLayer::new(8)?);
/// let folds = leave_one_out(&AttackConfig::imp9(), &views, &ScoreOptions::default())?;
/// assert_eq!(folds.len(), views.len());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn leave_one_out(
    config: &AttackConfig,
    views: &[SplitView],
    score_options: &ScoreOptions,
) -> Result<Vec<FoldResult>, AttackError> {
    if views.len() < 2 {
        return Err(AttackError::NoTrainingData);
    }
    par_map(config.parallelism, views.len(), |t| {
        let test = &views[t];
        let train: Vec<&SplitView> = views
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != t)
            .map(|(_, v)| v)
            .collect();
        let t0 = Instant::now();
        let model = TrainedAttack::train(config, &train, None)?;
        let train_time = t0.elapsed();
        let t1 = Instant::now();
        let scored = model.score(test, score_options);
        let score_time = t1.elapsed();
        Ok(FoldResult {
            test_name: test.name.clone(),
            scored,
            train_time,
            score_time,
        })
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_layout::{SplitLayer, Suite};

    #[test]
    fn folds_cover_every_design_once() {
        let views = Suite::ispd2011_like(0.02)
            .expect("valid scale")
            .split_all(SplitLayer::new(8).expect("valid"));
        let folds = leave_one_out(&AttackConfig::imp9(), &views, &ScoreOptions::default())
            .expect("xval runs");
        let names: Vec<&str> = folds.iter().map(|f| f.test_name.as_str()).collect();
        assert_eq!(names, ["sb1", "sb5", "sb10", "sb12", "sb18"]);
        for (f, v) in folds.iter().zip(&views) {
            assert_eq!(f.scored.slots.len(), v.num_vpins());
        }
    }

    #[test]
    fn too_few_views_is_an_error() {
        let views = Suite::ispd2011_like(0.02)
            .expect("valid scale")
            .split_all(SplitLayer::new(8).expect("valid"));
        let one = vec![views[0].clone()];
        assert!(matches!(
            leave_one_out(&AttackConfig::imp9(), &one, &ScoreOptions::default()),
            Err(AttackError::NoTrainingData)
        ));
    }
}
