//! Minimal dependency-free flag parsing for the `splitmfg` binary.

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` flags.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    flags: HashMap<String, String>,
}

/// Errors from flag parsing and typed access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseArgsError {
    /// No subcommand given.
    MissingCommand,
    /// A `--flag` had no value.
    MissingValue(String),
    /// A flag value failed to parse as the requested type.
    BadValue {
        /// Flag name without dashes.
        flag: String,
        /// The raw value.
        value: String,
    },
    /// A required flag is absent.
    MissingFlag(String),
    /// A flag the subcommand does not understand.
    UnknownFlag {
        /// Flag name without dashes.
        flag: String,
        /// The subcommand that rejected it.
        command: String,
    },
}

impl std::fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseArgsError::MissingCommand => write!(f, "no subcommand given (try 'help')"),
            ParseArgsError::MissingValue(k) => write!(f, "flag --{k} needs a value"),
            ParseArgsError::BadValue { flag, value } => {
                write!(f, "flag --{flag} has malformed value '{value}'")
            }
            ParseArgsError::MissingFlag(k) => write!(f, "required flag --{k} missing"),
            ParseArgsError::UnknownFlag { flag, command } => {
                write!(f, "unknown flag --{flag} for '{command}' (try 'help')")
            }
        }
    }
}

impl std::error::Error for ParseArgsError {}

impl Args {
    /// Parses `argv[1..]`-style tokens.
    ///
    /// # Errors
    ///
    /// Returns [`ParseArgsError`] when the command is missing or a flag is
    /// dangling.
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Self, ParseArgsError> {
        let mut it = tokens.into_iter().peekable();
        let command = it.next().ok_or(ParseArgsError::MissingCommand)?;
        let mut flags = HashMap::new();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| ParseArgsError::MissingValue(name.to_owned()))?;
                flags.insert(name.to_owned(), value);
            }
        }
        Ok(Self { command, flags })
    }

    /// Typed flag access with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ParseArgsError::BadValue`] if present but malformed.
    pub fn get_or<T: std::str::FromStr>(
        &self,
        flag: &str,
        default: T,
    ) -> Result<T, ParseArgsError> {
        match self.flags.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ParseArgsError::BadValue {
                flag: flag.to_owned(),
                value: v.clone(),
            }),
        }
    }

    /// Required typed flag.
    ///
    /// # Errors
    ///
    /// Returns [`ParseArgsError::MissingFlag`] or
    /// [`ParseArgsError::BadValue`].
    pub fn require<T: std::str::FromStr>(&self, flag: &str) -> Result<T, ParseArgsError> {
        let v = self
            .flags
            .get(flag)
            .ok_or_else(|| ParseArgsError::MissingFlag(flag.to_owned()))?;
        v.parse().map_err(|_| ParseArgsError::BadValue {
            flag: flag.to_owned(),
            value: v.clone(),
        })
    }

    /// Raw string flag.
    pub fn get_str(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// Rejects any flag not in `allowed` (typo defence: `--treads 4` must
    /// be an error, not a silently ignored token).
    ///
    /// # Errors
    ///
    /// Returns [`ParseArgsError::UnknownFlag`] naming the
    /// lexicographically first offender, for deterministic messages.
    pub fn check_known(&self, allowed: &[&str]) -> Result<(), ParseArgsError> {
        let mut unknown: Vec<&str> = self
            .flags
            .keys()
            .map(String::as_str)
            .filter(|k| !allowed.contains(k))
            .collect();
        unknown.sort_unstable();
        match unknown.first() {
            None => Ok(()),
            Some(flag) => Err(ParseArgsError::UnknownFlag {
                flag: (*flag).to_owned(),
                command: self.command.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, ParseArgsError> {
        Args::parse(tokens.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_command_and_flags() {
        let a = parse(&["gen", "--scale", "0.2", "--out", "/tmp/x"]).expect("parses");
        assert_eq!(a.command, "gen");
        assert_eq!(a.get_or("scale", 1.0).expect("ok"), 0.2);
        assert_eq!(a.get_str("out"), Some("/tmp/x"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse(&["attack"]).expect("parses");
        assert_eq!(a.get_or("split", 8u8).expect("ok"), 8);
    }

    #[test]
    fn missing_command_is_an_error() {
        assert_eq!(parse(&[]), Err(ParseArgsError::MissingCommand));
    }

    #[test]
    fn dangling_flag_is_an_error() {
        assert_eq!(
            parse(&["gen", "--scale"]),
            Err(ParseArgsError::MissingValue("scale".into()))
        );
    }

    #[test]
    fn bad_value_reports_flag_and_value() {
        let a = parse(&["gen", "--scale", "banana"]).expect("parses");
        let err = a.get_or("scale", 1.0).expect_err("malformed");
        assert_eq!(
            err,
            ParseArgsError::BadValue {
                flag: "scale".into(),
                value: "banana".into()
            }
        );
    }

    #[test]
    fn check_known_accepts_allowed_and_names_the_first_offender() {
        let a = parse(&["attack", "--dir", "d", "--zeta", "1", "--alpha", "2"]).expect("parses");
        assert!(a.check_known(&["dir", "zeta", "alpha"]).is_ok());
        assert_eq!(
            a.check_known(&["dir"]),
            Err(ParseArgsError::UnknownFlag {
                flag: "alpha".into(),
                command: "attack".into()
            })
        );
    }

    #[test]
    fn require_distinguishes_missing_from_bad() {
        let a = parse(&["attack", "--target", "sb1"]).expect("parses");
        assert_eq!(a.require::<String>("target").expect("ok"), "sb1");
        assert!(matches!(
            a.require::<u8>("split"),
            Err(ParseArgsError::MissingFlag(_))
        ));
    }
}
