//! Subcommand implementations for the `splitmfg` binary.

use std::fs;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use sm_attack::attack::{
    AttackConfig, Enumeration, Kernel, ScoreOptions, TrainOptions, TrainedAttack,
};
use sm_attack::proximity::{proximity_attack, validate_pa_fraction_opt, DEFAULT_PA_FRACTIONS};
use sm_attack::{Parallelism, TreeBackend};
use sm_layout::io::{read_challenge, write_challenge, write_truth};
use sm_layout::{SplitLayer, SplitView, Suite};
use sm_serve::artifact::{ArtifactError, ModelArtifact, TrainMeta};
use sm_serve::client::{bench, BenchConfig, ClientError, ClientTimeouts, RetryPolicy};
use sm_serve::server::{pool_size, serve, ServeOptions};

use crate::args::Args;

/// Top-level CLI error.
#[derive(Debug)]
pub enum CliError {
    /// Flag parsing / validation failure.
    Args(crate::args::ParseArgsError),
    /// Filesystem failure.
    Io(std::io::Error),
    /// Challenge parse failure.
    Parse(sm_layout::io::ParseChallengeError),
    /// Anything the attack layer reports.
    Attack(sm_attack::AttackError),
    /// A model artifact failed to load, validate, or save.
    Artifact(ArtifactError),
    /// A `bench-serve` client failure.
    Client(ClientError),
    /// User-level misuse (unknown command, missing target, ...).
    Usage(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "i/o: {e}"),
            CliError::Parse(e) => write!(f, "parse: {e}"),
            CliError::Attack(e) => write!(f, "attack: {e}"),
            CliError::Artifact(e) => write!(f, "{e}"),
            CliError::Client(e) => write!(f, "{e}"),
            CliError::Usage(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<crate::args::ParseArgsError> for CliError {
    fn from(e: crate::args::ParseArgsError) -> Self {
        CliError::Args(e)
    }
}
impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}
impl From<sm_layout::io::ParseChallengeError> for CliError {
    fn from(e: sm_layout::io::ParseChallengeError) -> Self {
        CliError::Parse(e)
    }
}
impl From<sm_attack::AttackError> for CliError {
    fn from(e: sm_attack::AttackError) -> Self {
        CliError::Attack(e)
    }
}
impl From<ArtifactError> for CliError {
    fn from(e: ArtifactError) -> Self {
        CliError::Artifact(e)
    }
}
impl From<ClientError> for CliError {
    fn from(e: ClientError) -> Self {
        CliError::Client(e)
    }
}

/// Routes a parsed command line to its implementation.
///
/// # Errors
///
/// Returns a [`CliError`] describing the failure; `main` prints it.
pub fn dispatch(args: &Args) -> Result<(), CliError> {
    match args.command.as_str() {
        "gen" => {
            args.check_known(&["out", "scale", "split"])?;
            cmd_gen(args)
        }
        "info" => {
            args.check_known(&["dir"])?;
            cmd_info(args)
        }
        "attack" => {
            args.check_known(&[
                "dir",
                "target",
                "config",
                "threshold",
                "threads",
                "model",
                "kernel",
                "enumeration",
                "tree-backend",
            ])?;
            cmd_attack(args)
        }
        "pa" => {
            args.check_known(&[
                "dir",
                "target",
                "config",
                "threads",
                "seed",
                "model",
                "kernel",
                "enumeration",
                "tree-backend",
            ])?;
            cmd_pa(args)
        }
        "train" => {
            args.check_known(&["dir", "target", "config", "threads", "out", "tree-backend"])?;
            cmd_train(args)
        }
        "serve" => {
            args.check_known(&[
                "model",
                "addr",
                "threads",
                "batch-threads",
                "kernel",
                "enumeration",
                "request-timeout-ms",
                "idle-timeout-ms",
                "max-request-bytes",
                "max-queue",
            ])?;
            cmd_serve(args)
        }
        "bench-serve" => {
            args.check_known(&[
                "addr",
                "connections",
                "requests",
                "batch",
                "json",
                "seed",
                "retries",
                "timeout-ms",
            ])?;
            cmd_bench_serve(args)
        }
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command '{other}' (try 'help')"
        ))),
    }
}

/// Prints usage text to stdout (`help` is an answer, not a diagnostic).
pub fn print_help() {
    println!(
        "splitmfg — ML security analysis of split manufacturing\n\
         \n\
         commands:\n\
         \x20 gen         --out DIR [--scale 0.2] [--split 8]         generate the 5-design suite\n\
         \x20 info        --dir DIR                                   summarise challenge files\n\
         \x20 attack      --dir DIR --target NAME [--config imp-11]\n\
         \x20             [--model FILE] [--threshold 0.5]\n\
         \x20             [--threads auto] [--kernel compiled]\n\
         \x20             [--enumeration spatial]\n\
         \x20             [--tree-backend binned]                     leave-one-out ML attack\n\
         \x20 pa          --dir DIR --target NAME [--config imp-9]\n\
         \x20             [--model FILE] [--threads auto]\n\
         \x20             [--kernel compiled] [--enumeration spatial]\n\
         \x20             [--tree-backend binned]                     validated proximity attack\n\
         \x20 train       --dir DIR --out FILE [--target NAME]\n\
         \x20             [--config imp-11] [--threads auto]\n\
         \x20             [--tree-backend binned]                     fit once, write a model artifact\n\
         \x20 serve       --model FILE [--addr 127.0.0.1:7878]\n\
         \x20             [--threads auto] [--batch-threads seq]\n\
         \x20             [--kernel compiled] [--enumeration spatial]\n\
         \x20             [--request-timeout-ms 10000]\n\
         \x20             [--idle-timeout-ms 60000]\n\
         \x20             [--max-request-bytes 67108864]\n\
         \x20             [--max-queue 0]                             TCP inference server (NDJSON)\n\
         \x20 bench-serve --addr HOST:PORT [--connections 4]\n\
         \x20             [--requests 50] [--batch 64] [--json FILE]\n\
         \x20             [--retries 3] [--timeout-ms 30000]          load-test a running server\n\
         \x20 help                                                    this text\n\
         \n\
         configs: ml-9, imp-9, imp-7, imp-11, and Y variants (imp-9y, ...)\n\
         --threads takes 'auto', 'sequential', or a worker count; results\n\
         are identical for every setting (deterministic parallelism).\n\
         --kernel takes 'compiled' (flattened ensemble, batched; default)\n\
         or 'reference'; scores are bit-identical either way.\n\
         --enumeration takes 'spatial' (grid radius queries, memory-bounded\n\
         at paper scale; default) or 'all-pairs' (the quadratic oracle);\n\
         scores are bit-identical either way.\n\
         --tree-backend takes 'binned' (histogram split-finding; default)\n\
         or 'reference'; trained models are bit-identical either way.\n\
         --model FILE loads a 'train' artifact instead of retraining; the\n\
         artifact records its own configuration, so --config is rejected.\n\
         serve timeouts/caps take 0 to disable (--max-queue 0 = 2x pool);\n\
         an overloaded server sheds connections with a Busy reply, which\n\
         bench-serve retries up to --retries times with backoff."
    );
}

fn parse_config(name: &str) -> Result<AttackConfig, CliError> {
    let lower = name.to_ascii_lowercase();
    let (base, y) = match lower.strip_suffix('y') {
        Some(stem) => (stem, true),
        None => (lower.as_str(), false),
    };
    let cfg = match base {
        "ml-9" | "ml9" => AttackConfig::ml9(),
        "imp-9" | "imp9" => AttackConfig::imp9(),
        "imp-7" | "imp7" => AttackConfig::imp7(),
        "imp-11" | "imp11" => AttackConfig::imp11(),
        _ => return Err(CliError::Usage(format!("unknown config '{name}'"))),
    };
    Ok(if y { cfg.with_y_limit() } else { cfg })
}

fn cmd_gen(args: &Args) -> Result<(), CliError> {
    let out: String = args
        .get_str("out")
        .ok_or_else(|| CliError::Usage("--out DIR required".into()))?
        .into();
    let scale: f64 = args.get_or("scale", 0.2)?;
    let split: u8 = args.get_or("split", 8)?;
    let layer = SplitLayer::new(split).map_err(|e| CliError::Usage(e.to_string()))?;
    fs::create_dir_all(&out)?;
    eprintln!("generating 5-design suite at scale {scale}, split layer {split} ...");
    let suite = Suite::ispd2011_like(scale).map_err(|e| CliError::Usage(e.to_string()))?;
    for bench in suite.benchmarks() {
        let view = bench.split(layer);
        let base = Path::new(&out).join(view.name.clone());
        fs::write(base.with_extension("challenge"), write_challenge(&view))?;
        fs::write(base.with_extension("truth"), write_truth(&view))?;
        println!(
            "{}: {} v-pins -> {}.challenge / .truth",
            view.name,
            view.num_vpins(),
            base.display()
        );
    }
    Ok(())
}

fn load_dir(dir: &str) -> Result<Vec<SplitView>, CliError> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "challenge"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(CliError::Usage(format!("no .challenge files in {dir}")));
    }
    let mut views = Vec::with_capacity(paths.len());
    for p in paths {
        let challenge = fs::read_to_string(&p)?;
        let truth = fs::read_to_string(p.with_extension("truth"))?;
        views.push(read_challenge(&challenge, &truth)?);
    }
    Ok(views)
}

fn split_target<'v>(
    views: &'v [SplitView],
    target: &str,
) -> Result<(Vec<&'v SplitView>, &'v SplitView), CliError> {
    let test = views
        .iter()
        .find(|v| v.name == target)
        .ok_or_else(|| CliError::Usage(format!("target '{target}' not found")))?;
    let train: Vec<&SplitView> = views.iter().filter(|v| v.name != target).collect();
    if train.is_empty() {
        return Err(CliError::Usage(
            "need at least one non-target design for training".into(),
        ));
    }
    Ok((train, test))
}

fn cmd_info(args: &Args) -> Result<(), CliError> {
    let dir: String = args
        .get_str("dir")
        .ok_or_else(|| CliError::Usage("--dir DIR required".into()))?
        .into();
    let views = load_dir(&dir)?;
    println!(
        "{:<8} {:>7} {:>9} {:>14} {:>12}",
        "design", "split", "v-pins", "die (um x um)", "drivers"
    );
    for v in &views {
        let drivers = v.vpins().iter().filter(|p| p.drives()).count();
        println!(
            "{:<8} {:>7} {:>9} {:>14} {:>12}",
            v.name,
            v.split.to_string(),
            v.num_vpins(),
            format!("{}x{}", v.die.width() / 1000, v.die.height() / 1000),
            drivers
        );
    }
    Ok(())
}

/// Loads a model artifact for `--model`, rejecting a simultaneous
/// `--config` (the artifact records its own configuration).
fn load_model_flag(args: &Args) -> Result<Option<TrainedAttack>, CliError> {
    let Some(path) = args.get_str("model") else {
        return Ok(None);
    };
    if args.get_str("config").is_some() {
        return Err(CliError::Usage(
            "--model and --config are mutually exclusive; the artifact records its \
             configuration"
                .into(),
        ));
    }
    let artifact = ModelArtifact::load(Path::new(path))?;
    let model = artifact.into_trained()?;
    eprintln!(
        "loaded {} from {path} ({} trees, {} training samples)",
        model.config().name,
        model.model().num_trees(),
        model.num_training_samples()
    );
    Ok(Some(model))
}

fn cmd_attack(args: &Args) -> Result<(), CliError> {
    let dir: String = args
        .get_str("dir")
        .ok_or_else(|| CliError::Usage("--dir DIR required".into()))?
        .into();
    let target: String = args.require("target")?;
    let parallelism: Parallelism = args.get_or("threads", Parallelism::Auto)?;
    let threshold: f64 = args.get_or("threshold", 0.5)?;
    let kernel: Kernel = args.get_or("kernel", Kernel::Compiled)?;
    let enumeration: Enumeration = args.get_or("enumeration", Enumeration::Spatial)?;
    let backend: TreeBackend = args.get_or("tree-backend", TreeBackend::Binned)?;

    let views = load_dir(&dir)?;
    let (train, test) = split_target(&views, &target)?;
    let model = match load_model_flag(args)? {
        Some(model) => model,
        None => {
            let config = parse_config(args.get_str("config").unwrap_or("imp-11"))?
                .with_parallelism(parallelism);
            eprintln!("training {} on {} designs ...", config.name, train.len());
            TrainedAttack::train_opt(&config, &train, None, TrainOptions { backend })?
        }
    };
    eprintln!(
        "scoring {} ({} v-pins, {} training samples, radius {:?}) ...",
        test.name,
        test.num_vpins(),
        model.num_training_samples(),
        model.radius()
    );
    let scored = model.score(
        test,
        &ScoreOptions {
            parallelism,
            kernel,
            enumeration,
            ..ScoreOptions::default()
        },
    );
    println!("pairs evaluated : {}", scored.pairs_scored);
    println!("threshold       : {threshold}");
    println!("mean |LoC|      : {:.2}", scored.mean_loc_at(threshold));
    println!(
        "accuracy        : {:.2}%",
        100.0 * scored.accuracy_at(threshold)
    );
    println!("max accuracy    : {:.2}%", 100.0 * scored.max_accuracy());
    let curve = scored.curve();
    for acc in [0.95, 0.90, 0.80] {
        match curve.min_loc_at_accuracy(acc) {
            Some(pt) => println!(
                "|LoC| @ {:>3.0}% acc: {:.2} (threshold {:.3})",
                acc * 100.0,
                pt.mean_loc,
                pt.threshold
            ),
            None => println!(
                "|LoC| @ {:>3.0}% acc: unreachable (saturation)",
                acc * 100.0
            ),
        }
    }
    Ok(())
}

fn cmd_pa(args: &Args) -> Result<(), CliError> {
    let dir: String = args
        .get_str("dir")
        .ok_or_else(|| CliError::Usage("--dir DIR required".into()))?
        .into();
    let target: String = args.require("target")?;
    let parallelism: Parallelism = args.get_or("threads", Parallelism::Auto)?;
    let seed: u64 = args.get_or("seed", 17)?;
    let kernel: Kernel = args.get_or("kernel", Kernel::Compiled)?;
    let enumeration: Enumeration = args.get_or("enumeration", Enumeration::Spatial)?;
    let backend: TreeBackend = args.get_or("tree-backend", TreeBackend::Binned)?;

    let views = load_dir(&dir)?;
    let (train, test) = split_target(&views, &target)?;
    // With --model, the PA-fraction validation reuses the artifact's
    // recorded configuration; only the already-trained ensemble is reused.
    let preloaded = load_model_flag(args)?;
    let config = match &preloaded {
        Some(model) => model.config().clone().with_parallelism(parallelism),
        None => {
            parse_config(args.get_str("config").unwrap_or("imp-9"))?.with_parallelism(parallelism)
        }
    };
    eprintln!("validating PA-LoC fractions on {} designs ...", train.len());
    let val = validate_pa_fraction_opt(
        &config,
        &train,
        &DEFAULT_PA_FRACTIONS,
        seed,
        TrainOptions { backend },
    )?;
    for (f, r) in &val.rates {
        println!(
            "fraction {:>7.3}% -> validation success {:>6.2}%",
            f * 100.0,
            r * 100.0
        );
    }
    println!("selected fraction: {:.3}%", val.best_fraction * 100.0);
    let model = match preloaded {
        Some(model) => model,
        None => TrainedAttack::train_opt(&config, &train, None, TrainOptions { backend })?,
    };
    let scored = model.score(
        test,
        &ScoreOptions {
            parallelism,
            kernel,
            enumeration,
            ..ScoreOptions::default()
        },
    );
    let outcome = proximity_attack(&scored, test, val.best_fraction, seed ^ 1);
    println!("proximity attack on {}: {}", test.name, outcome);
    Ok(())
}

fn cmd_train(args: &Args) -> Result<(), CliError> {
    let dir: String = args
        .get_str("dir")
        .ok_or_else(|| CliError::Usage("--dir DIR required".into()))?
        .into();
    let out: String = args
        .get_str("out")
        .ok_or_else(|| CliError::Usage("--out FILE required".into()))?
        .into();
    let parallelism: Parallelism = args.get_or("threads", Parallelism::Auto)?;
    let backend: TreeBackend = args.get_or("tree-backend", TreeBackend::Binned)?;
    let config =
        parse_config(args.get_str("config").unwrap_or("imp-11"))?.with_parallelism(parallelism);

    let views = load_dir(&dir)?;
    let (train, excluded) = match args.get_str("target") {
        // Leave the named design out so the artifact is valid for a later
        // `attack --model` run against it.
        Some(target) => {
            let (train, _) = split_target(&views, target)?;
            (train, Some(target.to_owned()))
        }
        None => (views.iter().collect::<Vec<_>>(), None),
    };
    eprintln!("training {} on {} designs ...", config.name, train.len());
    let model = TrainedAttack::train_opt(&config, &train, None, TrainOptions { backend })?;
    let meta = TrainMeta {
        benchmarks: train.iter().map(|v| v.name.clone()).collect(),
        split_layer: train[0].split.to_string(),
        excluded_target: excluded,
        created_unix_s: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_secs()),
    };
    let artifact = ModelArtifact::from_trained(&model, meta);
    artifact.save(Path::new(&out))?;
    println!(
        "wrote {out}: {} ({} trees, {} training samples, {} bytes)",
        model.config().name,
        model.model().num_trees(),
        model.num_training_samples(),
        artifact.encode().len()
    );
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), CliError> {
    let model_path: String = args
        .get_str("model")
        .ok_or_else(|| CliError::Usage("--model FILE required".into()))?
        .into();
    let addr: String = args.get_str("addr").unwrap_or("127.0.0.1:7878").into();
    let defaults = ServeOptions::default();
    let options = ServeOptions {
        workers: args.get_or("threads", Parallelism::Auto)?,
        batch: args.get_or("batch-threads", Parallelism::Sequential)?,
        kernel: args.get_or("kernel", Kernel::Compiled)?,
        enumeration: args.get_or("enumeration", Enumeration::Spatial)?,
        request_timeout_ms: args.get_or("request-timeout-ms", defaults.request_timeout_ms)?,
        idle_timeout_ms: args.get_or("idle-timeout-ms", defaults.idle_timeout_ms)?,
        max_request_bytes: args.get_or("max-request-bytes", defaults.max_request_bytes)?,
        max_queue: args.get_or("max-queue", defaults.max_queue)?,
    };
    let model = ModelArtifact::load(Path::new(&model_path))?.into_trained()?;
    let listener = TcpListener::bind(&addr)?;
    // Scripts parse this line for the resolved (possibly ephemeral) port.
    println!(
        "serving {} on {} ({} workers)",
        model.config().name,
        listener.local_addr()?,
        pool_size(options.workers)
    );
    use std::io::Write as _;
    std::io::stdout().flush()?;
    let stats = serve(model, listener, &options)?;
    println!(
        "shutdown after {} requests ({} errors, {} io errors, {} shed, {} timeouts, \
         {} pairs scored); latency p50 {} us, p95 {} us, p99 {} us",
        stats.requests,
        stats.errors,
        stats.io_errors,
        stats.shed,
        stats.timeouts,
        stats.pairs_scored,
        stats.p50_us,
        stats.p95_us,
        stats.p99_us
    );
    Ok(())
}

fn cmd_bench_serve(args: &Args) -> Result<(), CliError> {
    let addr: String = args
        .get_str("addr")
        .ok_or_else(|| CliError::Usage("--addr HOST:PORT required".into()))?
        .into();
    let defaults = BenchConfig::default();
    let io_ms: u64 = args.get_or("timeout-ms", defaults.timeouts.io_ms)?;
    let config = BenchConfig {
        connections: args.get_or("connections", defaults.connections)?,
        requests_per_connection: args.get_or("requests", defaults.requests_per_connection)?,
        batch_size: args.get_or("batch", defaults.batch_size)?,
        seed: args.get_or("seed", defaults.seed)?,
        timeouts: ClientTimeouts {
            io_ms,
            ..defaults.timeouts
        },
        retry: RetryPolicy::with_retries(args.get_or("retries", 3u32)?),
    };
    if config.connections == 0 || config.requests_per_connection == 0 || config.batch_size == 0 {
        return Err(CliError::Usage(
            "--connections, --requests, and --batch must all be >= 1".into(),
        ));
    }
    let report = bench(&addr, &config)?;
    println!("{report}");
    if let Some(path) = args.get_str("json") {
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| CliError::Usage(format!("report serialization failed: {e}")))?;
        fs::write(path, json + "\n")?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_names_parse_with_and_without_y() {
        assert_eq!(parse_config("imp-11").expect("ok").name, "Imp-11");
        assert_eq!(parse_config("IMP9Y").expect("ok").name, "Imp-9Y");
        assert_eq!(parse_config("ml-9").expect("ok").name, "ML-9");
        assert!(parse_config("rococo").is_err());
    }

    #[test]
    fn gen_then_info_then_attack_roundtrip() {
        let dir = std::env::temp_dir().join("splitmfg_cli_test");
        let _ = fs::remove_dir_all(&dir);
        let gen = Args::parse(
            [
                "gen",
                "--out",
                dir.to_str().expect("utf8"),
                "--scale",
                "0.01",
                "--split",
                "8",
            ]
            .iter()
            .map(|s| (*s).to_owned()),
        )
        .expect("parses");
        dispatch(&gen).expect("gen runs");
        let views = load_dir(dir.to_str().expect("utf8")).expect("loads");
        assert_eq!(views.len(), 5);

        let attack = Args::parse(
            [
                "attack",
                "--dir",
                dir.to_str().expect("utf8"),
                "--target",
                "sb1",
                "--config",
                "imp-9",
            ]
            .iter()
            .map(|s| (*s).to_owned()),
        )
        .expect("parses");
        dispatch(&attack).expect("attack runs");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn threads_flag_parses_and_rejects_garbage() {
        let dir = std::env::temp_dir().join("splitmfg_cli_test_threads");
        let _ = fs::remove_dir_all(&dir);
        let gen = Args::parse(
            [
                "gen",
                "--out",
                dir.to_str().expect("utf8"),
                "--scale",
                "0.01",
                "--split",
                "8",
            ]
            .iter()
            .map(|s| (*s).to_owned()),
        )
        .expect("parses");
        dispatch(&gen).expect("gen runs");
        let base = [
            "attack",
            "--dir",
            dir.to_str().expect("utf8"),
            "--target",
            "sb1",
            "--config",
            "imp-9",
        ];
        for threads in ["2", "sequential", "auto"] {
            let mut argv: Vec<String> = base.iter().map(|s| (*s).to_owned()).collect();
            argv.extend(["--threads".to_owned(), threads.to_owned()]);
            let attack = Args::parse(argv).expect("parses");
            dispatch(&attack).expect("attack runs");
        }
        let mut argv: Vec<String> = base.iter().map(|s| (*s).to_owned()).collect();
        argv.extend(["--threads".to_owned(), "banana".to_owned()]);
        let attack = Args::parse(argv).expect("parses");
        assert!(matches!(dispatch(&attack), Err(CliError::Args(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_command_reports_usage() {
        let args = Args::parse(["frobnicate"].iter().map(|s| (*s).to_owned())).expect("parses");
        assert!(matches!(dispatch(&args), Err(CliError::Usage(_))));
    }

    fn dispatch_tokens(tokens: &[&str]) -> Result<(), CliError> {
        dispatch(&Args::parse(tokens.iter().map(|s| (*s).to_owned())).expect("parses"))
    }

    #[test]
    fn unknown_flags_are_typed_errors_not_ignored() {
        // A typo'd flag must surface as ParseArgsError::UnknownFlag for
        // every subcommand, not silently fall back to the default.
        for tokens in [
            &["attack", "--dir", "x", "--target", "sb1", "--treads", "4"][..],
            &["gen", "--out", "x", "--scael", "0.1"][..],
            &["info", "--dir", "x", "--verbose", "1"][..],
            &["train", "--dir", "x", "--out", "y", "--model", "z"][..],
            &["serve", "--model", "x", "--port", "80"][..],
            &["bench-serve", "--addr", "x", "--conns", "2"][..],
        ] {
            let err = dispatch_tokens(tokens).expect_err("must reject");
            assert!(
                matches!(
                    err,
                    CliError::Args(crate::args::ParseArgsError::UnknownFlag { .. })
                ),
                "{tokens:?} -> {err:?}"
            );
        }
    }

    #[test]
    fn bad_threads_is_a_typed_bad_value() {
        let err = dispatch_tokens(&["train", "--dir", "x", "--out", "y", "--threads", "many"])
            .expect_err("must reject");
        assert!(
            matches!(
                err,
                CliError::Args(crate::args::ParseArgsError::BadValue { ref flag, .. })
                    if flag == "threads"
            ),
            "{err:?}"
        );
    }

    #[test]
    fn bad_tree_backend_is_a_typed_bad_value() {
        // Must fail on flag parsing — before any challenge file is read.
        for cmd in [
            &["attack", "--dir", "x", "--target", "sb1"][..],
            &["pa", "--dir", "x", "--target", "sb1"][..],
            &["train", "--dir", "x", "--out", "y"][..],
        ] {
            let mut tokens: Vec<&str> = cmd.to_vec();
            tokens.extend(["--tree-backend", "histogramish"]);
            let err = dispatch_tokens(&tokens).expect_err("must reject");
            assert!(
                matches!(
                    err,
                    CliError::Args(crate::args::ParseArgsError::BadValue { ref flag, .. })
                        if flag == "tree-backend"
                ),
                "{tokens:?} -> {err:?}"
            );
        }
    }

    #[test]
    fn bad_enumeration_is_a_typed_bad_value() {
        // Must fail on flag parsing — before any challenge file is read.
        for cmd in [
            &["attack", "--dir", "x", "--target", "sb1"][..],
            &["pa", "--dir", "x", "--target", "sb1"][..],
            &["serve", "--model", "x"][..],
        ] {
            let mut tokens: Vec<&str> = cmd.to_vec();
            tokens.extend(["--enumeration", "exhaustive"]);
            let err = dispatch_tokens(&tokens).expect_err("must reject");
            assert!(
                matches!(
                    err,
                    CliError::Args(crate::args::ParseArgsError::BadValue { ref flag, .. })
                        if flag == "enumeration"
                ),
                "{tokens:?} -> {err:?}"
            );
        }
    }

    #[test]
    fn enumeration_flag_accepts_both_strategies() {
        let dir = std::env::temp_dir().join("splitmfg_cli_test_enumeration");
        let _ = fs::remove_dir_all(&dir);
        dispatch_tokens(&[
            "gen",
            "--out",
            dir.to_str().expect("utf8"),
            "--scale",
            "0.01",
            "--split",
            "8",
        ])
        .expect("gen runs");
        for enumeration in ["spatial", "all-pairs"] {
            dispatch_tokens(&[
                "attack",
                "--dir",
                dir.to_str().expect("utf8"),
                "--target",
                "sb1",
                "--config",
                "imp-9",
                "--enumeration",
                enumeration,
            ])
            .expect("attack runs with either enumeration");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tree_backend_flag_accepts_both_backends() {
        let dir = std::env::temp_dir().join("splitmfg_cli_test_tree_backend");
        let _ = fs::remove_dir_all(&dir);
        dispatch_tokens(&[
            "gen",
            "--out",
            dir.to_str().expect("utf8"),
            "--scale",
            "0.01",
            "--split",
            "8",
        ])
        .expect("gen runs");
        for backend in ["binned", "reference"] {
            dispatch_tokens(&[
                "attack",
                "--dir",
                dir.to_str().expect("utf8"),
                "--target",
                "sb1",
                "--config",
                "imp-9",
                "--tree-backend",
                backend,
            ])
            .expect("attack runs with either backend");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hardening_flags_reject_garbage_with_typed_errors() {
        // The robustness knobs must fail closed on malformed values —
        // before any model file is touched.
        for (tokens, flag) in [
            (
                &["serve", "--model", "x", "--request-timeout-ms", "soon"][..],
                "request-timeout-ms",
            ),
            (
                &["serve", "--model", "x", "--idle-timeout-ms", "-5"][..],
                "idle-timeout-ms",
            ),
            (
                &["serve", "--model", "x", "--max-request-bytes", "big"][..],
                "max-request-bytes",
            ),
            (
                &["serve", "--model", "x", "--max-queue", "deep"][..],
                "max-queue",
            ),
            (
                &["bench-serve", "--addr", "x", "--retries", "forever"][..],
                "retries",
            ),
            (
                &["bench-serve", "--addr", "x", "--timeout-ms", "never"][..],
                "timeout-ms",
            ),
        ] {
            let err = dispatch_tokens(tokens).expect_err("must reject");
            assert!(
                matches!(
                    err,
                    CliError::Args(crate::args::ParseArgsError::BadValue { flag: ref f, .. })
                        if f == flag
                ),
                "{tokens:?} -> {err:?}"
            );
        }
    }

    #[test]
    fn missing_model_path_is_a_typed_artifact_io_error() {
        let err = dispatch_tokens(&[
            "attack",
            "--dir",
            "x",
            "--target",
            "sb1",
            "--model",
            "/nonexistent/model.smartifact",
        ])
        .expect_err("must reject");
        // The missing challenge dir is checked first; point at a real dir.
        let dir = std::env::temp_dir().join("splitmfg_cli_missing_model");
        let _ = fs::remove_dir_all(&dir);
        dispatch_tokens(&[
            "gen",
            "--out",
            dir.to_str().expect("utf8"),
            "--scale",
            "0.01",
        ])
        .expect("gen runs");
        let err2 = dispatch_tokens(&[
            "attack",
            "--dir",
            dir.to_str().expect("utf8"),
            "--target",
            "sb1",
            "--model",
            "/nonexistent/model.smartifact",
        ])
        .expect_err("must reject");
        assert!(
            matches!(err2, CliError::Artifact(ArtifactError::Io(_))),
            "{err2:?}"
        );
        // Without a directory the i/o error on --dir wins, also typed.
        assert!(matches!(err, CliError::Io(_)), "{err:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn model_and_config_flags_are_mutually_exclusive() {
        let dir = std::env::temp_dir().join("splitmfg_cli_model_conflict");
        let _ = fs::remove_dir_all(&dir);
        dispatch_tokens(&[
            "gen",
            "--out",
            dir.to_str().expect("utf8"),
            "--scale",
            "0.01",
        ])
        .expect("gen runs");
        let err = dispatch_tokens(&[
            "attack",
            "--dir",
            dir.to_str().expect("utf8"),
            "--target",
            "sb1",
            "--model",
            "whatever.model",
            "--config",
            "imp-9",
        ])
        .expect_err("must reject");
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_and_bench_serve_validate_required_flags() {
        assert!(matches!(
            dispatch_tokens(&["serve"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            dispatch_tokens(&["bench-serve"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            dispatch_tokens(&["bench-serve", "--addr", "x", "--connections", "0"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            dispatch_tokens(&["train", "--dir", "x"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn train_then_attack_with_model_skips_retraining() {
        let dir = std::env::temp_dir().join("splitmfg_cli_train_roundtrip");
        let _ = fs::remove_dir_all(&dir);
        let dir_s = dir.to_str().expect("utf8");
        dispatch_tokens(&["gen", "--out", dir_s, "--scale", "0.01", "--split", "8"])
            .expect("gen runs");
        let model_path = dir.join("sb1.model");
        let model_s = model_path.to_str().expect("utf8");
        dispatch_tokens(&[
            "train", "--dir", dir_s, "--target", "sb1", "--config", "imp-9", "--out", model_s,
        ])
        .expect("train runs");
        dispatch_tokens(&[
            "attack", "--dir", dir_s, "--target", "sb1", "--model", model_s,
        ])
        .expect("attack with artifact runs");
        dispatch_tokens(&["pa", "--dir", dir_s, "--target", "sb1", "--model", model_s])
            .expect("pa with artifact runs");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_target_is_a_usage_error() {
        let dir = std::env::temp_dir().join("splitmfg_cli_test2");
        let _ = fs::remove_dir_all(&dir);
        let gen = Args::parse(
            [
                "gen",
                "--out",
                dir.to_str().expect("utf8"),
                "--scale",
                "0.01",
            ]
            .iter()
            .map(|s| (*s).to_owned()),
        )
        .expect("parses");
        dispatch(&gen).expect("gen runs");
        let attack = Args::parse(
            [
                "attack",
                "--dir",
                dir.to_str().expect("utf8"),
                "--target",
                "nope",
            ]
            .iter()
            .map(|s| (*s).to_owned()),
        )
        .expect("parses");
        assert!(matches!(dispatch(&attack), Err(CliError::Usage(_))));
        let _ = fs::remove_dir_all(&dir);
    }
}
