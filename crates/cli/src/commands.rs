//! Subcommand implementations for the `splitmfg` binary.

use std::fs;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use sm_attack::attack::{
    AttackConfig, Enumeration, Kernel, ScoreOptions, ScoredView, TrainOptions, TrainedAttack,
};
use sm_attack::checkpoint::{
    score_resumable_as, CheckpointError, CheckpointSpec, Resume, ScoreOutcome,
    DEFAULT_CHECKPOINT_EVERY,
};
use sm_attack::interrupt;
use sm_attack::proximity::{proximity_attack, validate_pa_fraction_opt, DEFAULT_PA_FRACTIONS};
use sm_attack::{Parallelism, TreeBackend};
use sm_layout::io::{read_challenge, write_challenge, write_truth};
use sm_layout::{SplitLayer, SplitView, Suite};
use sm_serve::artifact::{ArtifactError, ModelArtifact, TrainMeta};
use sm_serve::client::{
    bench, AttackWorkload, BenchConfig, Client, ClientError, ClientTimeouts, RetryPolicy,
};
use sm_serve::protocol::{Request, Response, Wire};
use sm_serve::registry::{publish, verify, RegistryError, RegistryIndex};
use sm_serve::server::{
    event_loop_count, pool_size, serve_source_with, BatchLinger, ModelSource, ServeOptions,
    ShadowConfig, ShutdownHandle,
};

use crate::args::Args;

/// Top-level CLI error.
#[derive(Debug)]
pub enum CliError {
    /// Flag parsing / validation failure.
    Args(crate::args::ParseArgsError),
    /// Filesystem failure.
    Io(std::io::Error),
    /// Challenge parse failure.
    Parse(sm_layout::io::ParseChallengeError),
    /// Anything the attack layer reports.
    Attack(sm_attack::AttackError),
    /// A model artifact failed to load, validate, or save.
    Artifact(ArtifactError),
    /// A `bench-serve` client failure.
    Client(ClientError),
    /// A model registry failed to load, validate, or accept a publish.
    Registry(RegistryError),
    /// A checkpoint failed to load, verify, or save.
    Checkpoint(CheckpointError),
    /// The run was interrupted (SIGTERM/SIGINT) and drained cleanly;
    /// `main` maps this to exit code 3 so schedulers can tell a drained
    /// run from a failed one.
    Interrupted {
        /// Where the final checkpoint was written, if the interrupted
        /// stage had checkpointable state.
        checkpoint: Option<PathBuf>,
    },
    /// User-level misuse (unknown command, missing target, ...).
    Usage(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "i/o: {e}"),
            CliError::Parse(e) => write!(f, "parse: {e}"),
            CliError::Attack(e) => write!(f, "attack: {e}"),
            CliError::Artifact(e) => write!(f, "{e}"),
            CliError::Client(e) => write!(f, "{e}"),
            CliError::Registry(e) => write!(f, "registry: {e}"),
            CliError::Checkpoint(e) => write!(f, "{e}"),
            CliError::Interrupted { checkpoint } => match checkpoint {
                Some(path) => write!(
                    f,
                    "interrupted; resume from the checkpoint at {} with --resume true",
                    path.display()
                ),
                None => write!(f, "interrupted before any checkpointable state existed"),
            },
            CliError::Usage(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<crate::args::ParseArgsError> for CliError {
    fn from(e: crate::args::ParseArgsError) -> Self {
        CliError::Args(e)
    }
}
impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}
impl From<sm_layout::io::ParseChallengeError> for CliError {
    fn from(e: sm_layout::io::ParseChallengeError) -> Self {
        CliError::Parse(e)
    }
}
impl From<sm_attack::AttackError> for CliError {
    fn from(e: sm_attack::AttackError) -> Self {
        CliError::Attack(e)
    }
}
impl From<ArtifactError> for CliError {
    fn from(e: ArtifactError) -> Self {
        CliError::Artifact(e)
    }
}
impl From<ClientError> for CliError {
    fn from(e: ClientError) -> Self {
        CliError::Client(e)
    }
}
impl From<RegistryError> for CliError {
    fn from(e: RegistryError) -> Self {
        CliError::Registry(e)
    }
}
impl From<CheckpointError> for CliError {
    fn from(e: CheckpointError) -> Self {
        match e {
            // Unwrap the layers the CLI already has variants for, so an
            // attack failure inside a resumable run prints identically to
            // one outside it.
            CheckpointError::Attack(e) => CliError::Attack(e),
            other => CliError::Checkpoint(other),
        }
    }
}

/// Routes a parsed command line to its implementation.
///
/// # Errors
///
/// Returns a [`CliError`] describing the failure; `main` prints it.
pub fn dispatch(args: &Args) -> Result<(), CliError> {
    match args.command.as_str() {
        "gen" => {
            args.check_known(&["out", "scale", "split"])?;
            cmd_gen(args)
        }
        "info" => {
            args.check_known(&["dir"])?;
            cmd_info(args)
        }
        "attack" => {
            args.check_known(&[
                "dir",
                "target",
                "config",
                "threshold",
                "threads",
                "model",
                "kernel",
                "enumeration",
                "tree-backend",
                "checkpoint-dir",
                "checkpoint-every",
                "resume",
                "json",
            ])?;
            cmd_attack(args)
        }
        "pa" => {
            args.check_known(&[
                "dir",
                "target",
                "config",
                "threads",
                "seed",
                "model",
                "kernel",
                "enumeration",
                "tree-backend",
                "checkpoint-dir",
                "checkpoint-every",
                "resume",
            ])?;
            cmd_pa(args)
        }
        "train" => {
            args.check_known(&[
                "dir",
                "target",
                "config",
                "threads",
                "out",
                "tree-backend",
                "registry",
                "model-id",
                "make-default",
            ])?;
            cmd_train(args)
        }
        "serve" => {
            args.check_known(&[
                "model",
                "registry",
                "default-model",
                "shadow-model",
                "shadow-fraction",
                "addr",
                "threads",
                "batch-threads",
                "kernel",
                "enumeration",
                "request-timeout-ms",
                "idle-timeout-ms",
                "max-request-bytes",
                "max-queue",
                "event-loops",
                "batch-linger-us",
            ])?;
            cmd_serve(args)
        }
        "models" => {
            args.check_known(&["registry", "addr", "verify"])?;
            cmd_models(args)
        }
        "bench-serve" => {
            args.check_known(&[
                "addr",
                "connections",
                "requests",
                "batch",
                "json",
                "seed",
                "retries",
                "timeout-ms",
                "model-id",
                "wire",
                "pipeline",
                "json-payload",
                "attack-dir",
                "attack-target",
                "attack-detail",
                "attack-threshold",
            ])?;
            cmd_bench_serve(args)
        }
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command '{other}' (try 'help')"
        ))),
    }
}

/// Prints usage text to stdout (`help` is an answer, not a diagnostic).
pub fn print_help() {
    println!(
        "splitmfg — ML security analysis of split manufacturing\n\
         \n\
         commands:\n\
         \x20 gen         --out DIR [--scale 0.2] [--split 8]         generate the 5-design suite\n\
         \x20 info        --dir DIR                                   summarise challenge files\n\
         \x20 attack      --dir DIR --target NAME [--config imp-11]\n\
         \x20             [--model FILE] [--threshold 0.5]\n\
         \x20             [--threads auto] [--kernel compiled]\n\
         \x20             [--enumeration spatial]\n\
         \x20             [--tree-backend binned]\n\
         \x20             [--checkpoint-dir DIR]\n\
         \x20             [--checkpoint-every 2048] [--resume false]\n\
         \x20             [--json FILE]                               leave-one-out ML attack\n\
         \x20 pa          --dir DIR --target NAME [--config imp-9]\n\
         \x20             [--model FILE] [--threads auto]\n\
         \x20             [--kernel compiled] [--enumeration spatial]\n\
         \x20             [--tree-backend binned]\n\
         \x20             [--checkpoint-dir DIR]\n\
         \x20             [--checkpoint-every 2048] [--resume false]  validated proximity attack\n\
         \x20 train       --dir DIR (--out FILE | --registry DIR --model-id ID\n\
         \x20             [--make-default false]) [--target NAME]\n\
         \x20             [--config imp-11] [--threads auto]\n\
         \x20             [--tree-backend binned]                     fit once, write/publish an artifact\n\
         \x20 serve       (--model FILE | --registry DIR\n\
         \x20             [--default-model ID] [--shadow-model ID]\n\
         \x20             [--shadow-fraction 0.1])\n\
         \x20             [--addr 127.0.0.1:7878]\n\
         \x20             [--threads auto] [--batch-threads seq]\n\
         \x20             [--kernel compiled] [--enumeration spatial]\n\
         \x20             [--request-timeout-ms 10000]\n\
         \x20             [--idle-timeout-ms 60000]\n\
         \x20             [--max-request-bytes 67108864]\n\
         \x20             [--max-queue 0] [--event-loops 0]\n\
         \x20             [--batch-linger-us 0|auto]                  TCP inference server (ndjson+binary)\n\
         \x20 models      (--registry DIR [--verify true]\n\
         \x20             | --addr HOST:PORT)                         list / verify models\n\
         \x20 bench-serve --addr HOST:PORT [--connections 4]\n\
         \x20             [--requests 50] [--batch 64] [--json FILE]\n\
         \x20             [--retries 3] [--timeout-ms 30000]\n\
         \x20             [--model-id ID] [--wire ndjson]\n\
         \x20             [--pipeline 1] [--json-payload false]\n\
         \x20             [--attack-dir DIR --attack-target NAME\n\
         \x20             [--attack-detail false]\n\
         \x20             [--attack-threshold 0.5]]                   load-test a running server\n\
         \x20 help                                                    this text\n\
         \n\
         configs: ml-9, imp-9, imp-7, imp-11, and Y variants (imp-9y, ...)\n\
         --threads takes 'auto', 'sequential', or a worker count; results\n\
         are identical for every setting (deterministic parallelism).\n\
         --kernel takes 'compiled' (flattened ensemble, batched; default)\n\
         or 'reference'; scores are bit-identical either way.\n\
         --enumeration takes 'spatial' (grid radius queries, memory-bounded\n\
         at paper scale; default) or 'all-pairs' (the quadratic oracle);\n\
         scores are bit-identical either way.\n\
         --tree-backend takes 'binned' (histogram split-finding; default)\n\
         or 'reference'; trained models are bit-identical either way.\n\
         --model FILE loads a 'train' artifact instead of retraining; the\n\
         artifact records its own configuration, so --config is rejected.\n\
         serve timeouts/caps take 0 to disable (--max-queue 0 = 2x pool);\n\
         an overloaded server sheds connections with a Busy reply, which\n\
         bench-serve retries up to --retries times with backoff.\n\
         the server speaks two wires on one port, detected per connection\n\
         from the first byte: NDJSON (v1) and length-prefixed binary\n\
         frames (v2, --wire binary on bench-serve). --event-loops 0 sizes\n\
         the reactor from the CPU count; --batch-linger-us waits that long\n\
         for extra same-model requests before scoring a partial batch, or\n\
         'auto' to linger only while recent batches ran under-full with\n\
         concurrent requests (scores are bit-identical with batching on\n\
         or off). bench-serve --pipeline N keeps N requests in flight per\n\
         connection; --attack-dir/--attack-target switch the workload to\n\
         whole-challenge Attack requests (--attack-detail true returns the\n\
         full scored view), and --json-payload true forces JSON framing on\n\
         the binary wire for dense-vs-JSON comparisons.\n\
         a registry is a directory of checksummed artifacts plus an index;\n\
         'train --registry' publishes into it atomically, 'serve --registry'\n\
         hosts every entry (requests route with \"model_id\", absent = the\n\
         default), a Reload request hot-swaps the catalog without dropping\n\
         connections, and --shadow-model scores a fraction of default-routed\n\
         traffic against a challenger, reporting exact divergence in Stats.\n\
         'models --registry DIR --verify true' sweeps every artifact offline\n\
         (index checksum + per-file hash + decode), nonzero exit on corruption.\n\
         crash safety: --checkpoint-dir makes attack/pa checkpoint every\n\
         --checkpoint-every targets (atomic, checksummed); --resume true\n\
         continues from the checkpoint, bit-identical to an uninterrupted\n\
         run (a mismatched config/model/view is a typed refusal). SIGTERM\n\
         drains the in-flight shard, writes a final checkpoint, and exits\n\
         with code 3 (0 = success, 1 = error, 2 = bad flags); 'attack\n\
         --json FILE' dumps the scored slots/hist/curve for comparison.\n\
         SIGTERM on serve stops accepting, drains in-flight requests, and\n\
         prints the final stats line, like a protocol Shutdown."
    );
}

fn parse_config(name: &str) -> Result<AttackConfig, CliError> {
    let lower = name.to_ascii_lowercase();
    let (base, y) = match lower.strip_suffix('y') {
        Some(stem) => (stem, true),
        None => (lower.as_str(), false),
    };
    let cfg = match base {
        "ml-9" | "ml9" => AttackConfig::ml9(),
        "imp-9" | "imp9" => AttackConfig::imp9(),
        "imp-7" | "imp7" => AttackConfig::imp7(),
        "imp-11" | "imp11" => AttackConfig::imp11(),
        _ => return Err(CliError::Usage(format!("unknown config '{name}'"))),
    };
    Ok(if y { cfg.with_y_limit() } else { cfg })
}

fn cmd_gen(args: &Args) -> Result<(), CliError> {
    let out: String = args
        .get_str("out")
        .ok_or_else(|| CliError::Usage("--out DIR required".into()))?
        .into();
    let scale: f64 = args.get_or("scale", 0.2)?;
    let split: u8 = args.get_or("split", 8)?;
    let layer = SplitLayer::new(split).map_err(|e| CliError::Usage(e.to_string()))?;
    fs::create_dir_all(&out)?;
    eprintln!("generating 5-design suite at scale {scale}, split layer {split} ...");
    let suite = Suite::ispd2011_like(scale).map_err(|e| CliError::Usage(e.to_string()))?;
    for bench in suite.benchmarks() {
        let view = bench.split(layer);
        let base = Path::new(&out).join(view.name.clone());
        fs::write(base.with_extension("challenge"), write_challenge(&view))?;
        fs::write(base.with_extension("truth"), write_truth(&view))?;
        println!(
            "{}: {} v-pins -> {}.challenge / .truth",
            view.name,
            view.num_vpins(),
            base.display()
        );
    }
    Ok(())
}

fn load_dir(dir: &str) -> Result<Vec<SplitView>, CliError> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "challenge"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(CliError::Usage(format!("no .challenge files in {dir}")));
    }
    let mut views = Vec::with_capacity(paths.len());
    for p in paths {
        let challenge = fs::read_to_string(&p)?;
        let truth = fs::read_to_string(p.with_extension("truth"))?;
        views.push(read_challenge(&challenge, &truth)?);
    }
    Ok(views)
}

fn split_target<'v>(
    views: &'v [SplitView],
    target: &str,
) -> Result<(Vec<&'v SplitView>, &'v SplitView), CliError> {
    let test = views
        .iter()
        .find(|v| v.name == target)
        .ok_or_else(|| CliError::Usage(format!("target '{target}' not found")))?;
    let train: Vec<&SplitView> = views.iter().filter(|v| v.name != target).collect();
    if train.is_empty() {
        return Err(CliError::Usage(
            "need at least one non-target design for training".into(),
        ));
    }
    Ok((train, test))
}

fn cmd_info(args: &Args) -> Result<(), CliError> {
    let dir: String = args
        .get_str("dir")
        .ok_or_else(|| CliError::Usage("--dir DIR required".into()))?
        .into();
    let views = load_dir(&dir)?;
    println!(
        "{:<8} {:>7} {:>9} {:>14} {:>12}",
        "design", "split", "v-pins", "die (um x um)", "drivers"
    );
    for v in &views {
        let drivers = v.vpins().iter().filter(|p| p.drives()).count();
        println!(
            "{:<8} {:>7} {:>9} {:>14} {:>12}",
            v.name,
            v.split.to_string(),
            v.num_vpins(),
            format!("{}x{}", v.die.width() / 1000, v.die.height() / 1000),
            drivers
        );
    }
    Ok(())
}

/// Loads a model artifact for `--model`, rejecting a simultaneous
/// `--config` (the artifact records its own configuration).
fn load_model_flag(args: &Args) -> Result<Option<TrainedAttack>, CliError> {
    let Some(path) = args.get_str("model") else {
        return Ok(None);
    };
    if args.get_str("config").is_some() {
        return Err(CliError::Usage(
            "--model and --config are mutually exclusive; the artifact records its \
             configuration"
                .into(),
        ));
    }
    let artifact = ModelArtifact::load(Path::new(path))?;
    let model = artifact.into_trained()?;
    eprintln!(
        "loaded {} from {path} ({} trees, {} training samples)",
        model.config().name,
        model.model().num_trees(),
        model.num_training_samples()
    );
    Ok(Some(model))
}

/// Validates the `--checkpoint-dir` / `--checkpoint-every` / `--resume`
/// flag family: values must parse, the dependent flags require
/// `--checkpoint-dir`, and `--checkpoint-every` must be at least 1.
/// Returns the resolved spec (checkpoint file `<file_name>` inside the
/// directory) plus the resume mode, or `None` when checkpointing is off.
fn checkpoint_flags(
    args: &Args,
    file_name: &str,
) -> Result<Option<(CheckpointSpec, Resume)>, CliError> {
    // Parse values first so garbage fails typed even when the combination
    // is also wrong.
    let every: usize = args.get_or("checkpoint-every", DEFAULT_CHECKPOINT_EVERY)?;
    let resume: bool = args.get_or("resume", false)?;
    let Some(dir) = args.get_str("checkpoint-dir") else {
        for flag in ["checkpoint-every", "resume"] {
            if args.get_str(flag).is_some() {
                return Err(CliError::Usage(format!(
                    "--{flag} requires --checkpoint-dir"
                )));
            }
        }
        return Ok(None);
    };
    if every == 0 {
        return Err(CliError::Usage("--checkpoint-every must be >= 1".into()));
    }
    fs::create_dir_all(dir)?;
    Ok(Some((
        CheckpointSpec {
            path: Path::new(dir).join(file_name),
            every,
        },
        if resume {
            Resume::IfPresent
        } else {
            Resume::Fresh
        },
    )))
}

/// Scores `test`, either directly or through the crash-safe resumable
/// driver when `--checkpoint-dir` is set. In checkpointing mode
/// SIGTERM/SIGINT drain the in-flight shard, persist a final checkpoint,
/// and surface as [`CliError::Interrupted`] (exit code 3).
fn score_maybe_resumable(
    kind: &str,
    model: &TrainedAttack,
    test: &SplitView,
    options: &ScoreOptions,
    checkpoint: Option<&(CheckpointSpec, Resume)>,
) -> Result<ScoredView, CliError> {
    let Some((spec, resume)) = checkpoint else {
        return Ok(model.score(test, options));
    };
    interrupt::install_handlers();
    match score_resumable_as(
        kind,
        model,
        test,
        options,
        spec,
        *resume,
        &interrupt::requested,
    )? {
        ScoreOutcome::Complete(scored) => Ok(scored),
        ScoreOutcome::Interrupted {
            targets_done,
            num_targets,
        } => {
            eprintln!(
                "drained after {targets_done}/{num_targets} targets; checkpoint at {}",
                spec.path.display()
            );
            Err(CliError::Interrupted {
                checkpoint: Some(spec.path.clone()),
            })
        }
    }
}

fn cmd_attack(args: &Args) -> Result<(), CliError> {
    let dir: String = args
        .get_str("dir")
        .ok_or_else(|| CliError::Usage("--dir DIR required".into()))?
        .into();
    let target: String = args.require("target")?;
    let parallelism: Parallelism = args.get_or("threads", Parallelism::Auto)?;
    let threshold: f64 = args.get_or("threshold", 0.5)?;
    let kernel: Kernel = args.get_or("kernel", Kernel::Compiled)?;
    let enumeration: Enumeration = args.get_or("enumeration", Enumeration::Spatial)?;
    let backend: TreeBackend = args.get_or("tree-backend", TreeBackend::Binned)?;
    let checkpoint = checkpoint_flags(args, &format!("attack-{target}.ckpt"))?;

    let views = load_dir(&dir)?;
    let (train, test) = split_target(&views, &target)?;
    let model = match load_model_flag(args)? {
        Some(model) => model,
        None => {
            let config = parse_config(args.get_str("config").unwrap_or("imp-11"))?
                .with_parallelism(parallelism);
            eprintln!("training {} on {} designs ...", config.name, train.len());
            TrainedAttack::train_opt(&config, &train, None, TrainOptions { backend })?
        }
    };
    eprintln!(
        "scoring {} ({} v-pins, {} training samples, radius {:?}) ...",
        test.name,
        test.num_vpins(),
        model.num_training_samples(),
        model.radius()
    );
    let scored = score_maybe_resumable(
        "attack",
        &model,
        test,
        &ScoreOptions {
            parallelism,
            kernel,
            enumeration,
            ..ScoreOptions::default()
        },
        checkpoint.as_ref(),
    )?;
    if let Some(path) = args.get_str("json") {
        // Deterministic dump of the full scoring result: serde_json
        // round-trips f64 exactly, so byte-identical files mean
        // bit-identical slots/hists/curves (what the kill-and-resume
        // smoke compares with `cmp`).
        let json = format!(
            "{{\"scored\":{},\"curve\":{}}}\n",
            serde_json::to_string(&scored).expect("scored views always serialize"),
            serde_json::to_string(&scored.curve()).expect("curves always serialize"),
        );
        fs::write(path, json)?;
        eprintln!("wrote {path}");
    }
    println!("pairs evaluated : {}", scored.pairs_scored);
    println!("threshold       : {threshold}");
    println!("mean |LoC|      : {:.2}", scored.mean_loc_at(threshold));
    println!(
        "accuracy        : {:.2}%",
        100.0 * scored.accuracy_at(threshold)
    );
    println!("max accuracy    : {:.2}%", 100.0 * scored.max_accuracy());
    let curve = scored.curve();
    for acc in [0.95, 0.90, 0.80] {
        match curve.min_loc_at_accuracy(acc) {
            Some(pt) => println!(
                "|LoC| @ {:>3.0}% acc: {:.2} (threshold {:.3})",
                acc * 100.0,
                pt.mean_loc,
                pt.threshold
            ),
            None => println!(
                "|LoC| @ {:>3.0}% acc: unreachable (saturation)",
                acc * 100.0
            ),
        }
    }
    Ok(())
}

fn cmd_pa(args: &Args) -> Result<(), CliError> {
    let dir: String = args
        .get_str("dir")
        .ok_or_else(|| CliError::Usage("--dir DIR required".into()))?
        .into();
    let target: String = args.require("target")?;
    let parallelism: Parallelism = args.get_or("threads", Parallelism::Auto)?;
    let seed: u64 = args.get_or("seed", 17)?;
    let kernel: Kernel = args.get_or("kernel", Kernel::Compiled)?;
    let enumeration: Enumeration = args.get_or("enumeration", Enumeration::Spatial)?;
    let backend: TreeBackend = args.get_or("tree-backend", TreeBackend::Binned)?;
    let checkpoint = checkpoint_flags(args, &format!("pa-{target}.ckpt"))?;

    let views = load_dir(&dir)?;
    let (train, test) = split_target(&views, &target)?;
    // With --model, the PA-fraction validation reuses the artifact's
    // recorded configuration; only the already-trained ensemble is reused.
    let preloaded = load_model_flag(args)?;
    let config = match &preloaded {
        Some(model) => model.config().clone().with_parallelism(parallelism),
        None => {
            parse_config(args.get_str("config").unwrap_or("imp-9"))?.with_parallelism(parallelism)
        }
    };
    if checkpoint.is_some() {
        // Install early so a SIGTERM during the (non-checkpointable)
        // validation/training stages is honoured at the next stage
        // boundary instead of being lost.
        interrupt::install_handlers();
    }
    eprintln!("validating PA-LoC fractions on {} designs ...", train.len());
    let val = validate_pa_fraction_opt(
        &config,
        &train,
        &DEFAULT_PA_FRACTIONS,
        seed,
        TrainOptions { backend },
    )?;
    for (f, r) in &val.rates {
        println!(
            "fraction {:>7.3}% -> validation success {:>6.2}%",
            f * 100.0,
            r * 100.0
        );
    }
    println!("selected fraction: {:.3}%", val.best_fraction * 100.0);
    if checkpoint.is_some() && interrupt::requested() {
        // Stage boundary: validation is pure recomputation, so there is
        // nothing durable to write yet — a resume re-runs it identically.
        return Err(CliError::Interrupted { checkpoint: None });
    }
    let model = match preloaded {
        Some(model) => model,
        None => TrainedAttack::train_opt(&config, &train, None, TrainOptions { backend })?,
    };
    let scored = score_maybe_resumable(
        "pa",
        &model,
        test,
        &ScoreOptions {
            parallelism,
            kernel,
            enumeration,
            ..ScoreOptions::default()
        },
        checkpoint.as_ref(),
    )?;
    let outcome = proximity_attack(&scored, test, val.best_fraction, seed ^ 1);
    println!("proximity attack on {}: {}", test.name, outcome);
    Ok(())
}

/// Where `train` should put the finished artifact: a bare file, or a
/// named entry published into a registry directory.
enum TrainSink {
    File(String),
    Registry {
        dir: String,
        model_id: String,
        make_default: bool,
    },
}

/// Validates the `--out` / `--registry --model-id [--make-default]`
/// flag combinations *before* any training happens.
fn train_sink(args: &Args) -> Result<TrainSink, CliError> {
    match (args.get_str("out"), args.get_str("registry")) {
        (Some(_), Some(_)) => Err(CliError::Usage(
            "--out and --registry are mutually exclusive; pick a bare artifact file \
             or a registry publish"
                .into(),
        )),
        (None, None) => Err(CliError::Usage(
            "--out FILE or --registry DIR required".into(),
        )),
        (Some(out), None) => {
            for flag in ["model-id", "make-default"] {
                if args.get_str(flag).is_some() {
                    return Err(CliError::Usage(format!("--{flag} requires --registry")));
                }
            }
            Ok(TrainSink::File(out.into()))
        }
        (None, Some(dir)) => {
            let model_id: String = args
                .get_str("model-id")
                .ok_or_else(|| CliError::Usage("--registry requires --model-id ID".into()))?
                .into();
            Ok(TrainSink::Registry {
                dir: dir.into(),
                model_id,
                make_default: args.get_or("make-default", false)?,
            })
        }
    }
}

fn cmd_train(args: &Args) -> Result<(), CliError> {
    let dir: String = args
        .get_str("dir")
        .ok_or_else(|| CliError::Usage("--dir DIR required".into()))?
        .into();
    let sink = train_sink(args)?;
    let parallelism: Parallelism = args.get_or("threads", Parallelism::Auto)?;
    let backend: TreeBackend = args.get_or("tree-backend", TreeBackend::Binned)?;
    let config =
        parse_config(args.get_str("config").unwrap_or("imp-11"))?.with_parallelism(parallelism);

    let views = load_dir(&dir)?;
    let (train, excluded) = match args.get_str("target") {
        // Leave the named design out so the artifact is valid for a later
        // `attack --model` run against it.
        Some(target) => {
            let (train, _) = split_target(&views, target)?;
            (train, Some(target.to_owned()))
        }
        None => (views.iter().collect::<Vec<_>>(), None),
    };
    eprintln!("training {} on {} designs ...", config.name, train.len());
    let model = TrainedAttack::train_opt(&config, &train, None, TrainOptions { backend })?;
    let meta = TrainMeta {
        benchmarks: train.iter().map(|v| v.name.clone()).collect(),
        split_layer: train[0].split.to_string(),
        excluded_target: excluded,
        created_unix_s: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_secs()),
    };
    let artifact = ModelArtifact::from_trained(&model, meta);
    match sink {
        TrainSink::File(out) => {
            artifact.save(Path::new(&out))?;
            println!(
                "wrote {out}: {} ({} trees, {} training samples, {} bytes)",
                model.config().name,
                model.model().num_trees(),
                model.num_training_samples(),
                artifact.encode().len()
            );
        }
        TrainSink::Registry {
            dir,
            model_id,
            make_default,
        } => {
            let entry = publish(Path::new(&dir), &model_id, &artifact, make_default)?;
            let index = RegistryIndex::load(Path::new(&dir))?;
            println!(
                "published '{model_id}' to {dir}: {} ({} trees, {}){}",
                model.config().name,
                model.model().num_trees(),
                entry.checksum,
                if index.default_model == model_id {
                    " [default]"
                } else {
                    ""
                }
            );
        }
    }
    Ok(())
}

/// Validates the `--model` / `--registry` flag combinations and builds
/// the [`ModelSource`] plus the human-readable banner label.
fn serve_source_flags(args: &Args) -> Result<(ModelSource, String), CliError> {
    match (args.get_str("model"), args.get_str("registry")) {
        (Some(_), Some(_)) => Err(CliError::Usage(
            "--model and --registry are mutually exclusive; serve one artifact file \
             or a whole registry"
                .into(),
        )),
        (None, None) => Err(CliError::Usage(
            "--model FILE or --registry DIR required".into(),
        )),
        (Some(path), None) => {
            // Gate the registry-only flags before any file i/o.
            for flag in ["default-model", "shadow-model", "shadow-fraction"] {
                if args.get_str(flag).is_some() {
                    return Err(CliError::Usage(format!("--{flag} requires --registry")));
                }
            }
            let model = ModelArtifact::load(Path::new(path))?.into_trained()?;
            let label = model.config().name.clone();
            Ok((ModelSource::Single(model), label))
        }
        (None, Some(dir)) => {
            // Read the index up front for the banner; serve_source
            // re-validates (and checksums) everything when it loads the
            // catalog proper.
            let index = RegistryIndex::load(Path::new(dir))?;
            let default = args
                .get_str("default-model")
                .unwrap_or(&index.default_model)
                .to_owned();
            let label = format!(
                "registry {dir} ({} models, default '{default}')",
                index.entries.len()
            );
            Ok((
                ModelSource::Registry {
                    dir: PathBuf::from(dir),
                    default_model: args.get_str("default-model").map(str::to_owned),
                },
                label,
            ))
        }
    }
}

/// Validates the `--shadow-model` / `--shadow-fraction` pair.
fn shadow_flags(args: &Args) -> Result<Option<ShadowConfig>, CliError> {
    match args.get_str("shadow-model") {
        Some(id) => {
            let fraction: f64 = args.get_or("shadow-fraction", 0.1)?;
            if !(0.0..=1.0).contains(&fraction) {
                return Err(CliError::Usage(format!(
                    "--shadow-fraction must be in [0, 1], got {fraction}"
                )));
            }
            Ok(Some(ShadowConfig::new(id, fraction)))
        }
        None => {
            if args.get_str("shadow-fraction").is_some() {
                return Err(CliError::Usage(
                    "--shadow-fraction requires --shadow-model".into(),
                ));
            }
            Ok(None)
        }
    }
}

fn cmd_serve(args: &Args) -> Result<(), CliError> {
    // Parse every scalar flag first so a typo'd value fails before any
    // model file or registry directory is touched.
    let addr: String = args.get_str("addr").unwrap_or("127.0.0.1:7878").into();
    let defaults = ServeOptions::default();
    let options = ServeOptions {
        workers: args.get_or("threads", Parallelism::Auto)?,
        batch: args.get_or("batch-threads", Parallelism::Sequential)?,
        kernel: args.get_or("kernel", Kernel::Compiled)?,
        enumeration: args.get_or("enumeration", Enumeration::Spatial)?,
        request_timeout_ms: args.get_or("request-timeout-ms", defaults.request_timeout_ms)?,
        idle_timeout_ms: args.get_or("idle-timeout-ms", defaults.idle_timeout_ms)?,
        max_request_bytes: args.get_or("max-request-bytes", defaults.max_request_bytes)?,
        max_queue: args.get_or("max-queue", defaults.max_queue)?,
        event_loops: args.get_or("event-loops", defaults.event_loops)?,
        batch_linger: args.get_or("batch-linger-us", defaults.batch_linger)?,
    };
    let shadow = shadow_flags(args)?;
    let (source, label) = serve_source_flags(args)?;
    let listener = TcpListener::bind(&addr)?;
    // Scripts parse this line for the resolved (possibly ephemeral) port.
    // "scoring workers" is the executor pool (`pool_size`); the event
    // loops are the reactor threads doing connection i/o.
    println!(
        "serving {} on {} ({} scoring workers, {} event loops)",
        label,
        listener.local_addr()?,
        pool_size(options.workers),
        event_loop_count(&options)
    );
    match options.batch_linger {
        BatchLinger::Fixed(0) => {}
        BatchLinger::Fixed(us) => println!("batch linger: fixed {us} us"),
        BatchLinger::Auto => {
            println!("batch linger: adaptive (lingers only while batches run under-full)");
        }
    }
    use std::io::Write as _;
    std::io::stdout().flush()?;
    // SIGTERM/SIGINT drain the server exactly like a protocol Shutdown:
    // the handler only sets a flag; this watcher thread notices and pokes
    // the accept loop awake (glibc installs handlers with SA_RESTART, so
    // a blocked accept() would never otherwise observe the signal). The
    // thread is left running at exit — process teardown reaps it.
    interrupt::install_handlers();
    let shutdown = ShutdownHandle::new();
    let watcher = shutdown.clone();
    std::thread::spawn(move || loop {
        if interrupt::requested() {
            watcher.request();
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    });
    let stats = serve_source_with(source, shadow, listener, &options, Some(&shutdown))?;
    println!(
        "shutdown after {} requests ({} errors, {} io errors, {} shed, {} timeouts, \
         {} pairs scored, {} reloads); latency p50 {} us, p95 {} us, p99 {} us",
        stats.requests,
        stats.errors,
        stats.io_errors,
        stats.shed,
        stats.timeouts,
        stats.pairs_scored,
        stats.reloads,
        stats.p50_us,
        stats.p95_us,
        stats.p99_us
    );
    if stats.score_batches > 0 {
        println!(
            "batching: {} kernel calls over {} rows ({:.1} rows/call), \
             {} requests shared a call [linger {}]",
            stats.score_batches,
            stats.batched_rows,
            stats.batched_rows as f64 / stats.score_batches as f64,
            stats.batched_requests,
            options.batch_linger
        );
    }
    if let Some(shadow) = &stats.shadow {
        println!(
            "shadow '{}': {} sampled requests, {} pairs compared, max |dp| {:.6}, \
             mean |dp| {:.6}, {} disagreements @ {}, {} missing",
            shadow.shadow_model,
            shadow.sampled_requests,
            shadow.compared_pairs,
            shadow.max_abs_dp,
            shadow.mean_abs_dp,
            shadow.disagreements,
            shadow.threshold,
            shadow.shadow_missing
        );
    }
    Ok(())
}

/// `models --verify`: offline integrity sweep of a registry directory,
/// one OK/CORRUPT line per model, typed error (nonzero exit) if anything
/// fails.
fn models_verify(dir: &str) -> Result<(), CliError> {
    let report = verify(Path::new(dir))?;
    let mut corrupt = 0usize;
    for model in &report {
        match &model.status {
            Ok(checksum) => println!("{:<20} OK      {checksum}", model.model_id),
            Err(reason) => {
                corrupt += 1;
                println!("{:<20} CORRUPT {reason}", model.model_id);
            }
        }
    }
    if corrupt > 0 {
        return Err(CliError::Usage(format!(
            "registry {dir} failed verification: {corrupt} of {} models corrupt",
            report.len()
        )));
    }
    println!("registry {dir} verified: {} models OK", report.len());
    Ok(())
}

fn cmd_models(args: &Args) -> Result<(), CliError> {
    // Parse --verify up front so garbage fails typed for either source.
    let verify_requested: bool = args.get_or("verify", false)?;
    match (args.get_str("registry"), args.get_str("addr")) {
        (Some(_), Some(_)) => Err(CliError::Usage(
            "--registry and --addr are mutually exclusive; inspect a directory \
             offline or ask a running server"
                .into(),
        )),
        (None, None) => Err(CliError::Usage(
            "--registry DIR or --addr HOST:PORT required".into(),
        )),
        (Some(dir), None) if verify_requested => models_verify(dir),
        (Some(dir), None) => {
            let index = RegistryIndex::load(Path::new(dir))?;
            println!(
                "registry {dir}: {} models, default '{}'",
                index.entries.len(),
                index.default_model
            );
            println!(
                "{:<20} {:>7} {:>7} {:<25} artifact",
                "model", "schema", "split", "checksum"
            );
            for e in &index.entries {
                let marker = if e.model_id == index.default_model {
                    "*"
                } else {
                    ""
                };
                println!(
                    "{:<20} {:>7} {:>7} {:<25} {}",
                    format!("{}{marker}", e.model_id),
                    e.schema_version,
                    e.meta.split_layer,
                    e.checksum,
                    e.path
                );
            }
            Ok(())
        }
        (None, Some(addr)) => {
            if args.get_str("verify").is_some() {
                return Err(CliError::Usage(
                    "--verify requires --registry (it is an offline filesystem sweep)".into(),
                ));
            }
            let mut client = Client::connect(addr)?;
            match client.call_ok(&Request::ListModels)? {
                Response::Models {
                    default_model,
                    models,
                } => {
                    println!(
                        "server {addr}: {} models, default '{default_model}'",
                        models.len()
                    );
                    println!(
                        "{:<20} {:<8} {:>8} {:>6} {:>7} checksum",
                        "model", "config", "features", "trees", "split"
                    );
                    for m in &models {
                        let marker = if m.model_id == default_model { "*" } else { "" };
                        println!(
                            "{:<20} {:<8} {:>8} {:>6} {:>7} {}",
                            format!("{}{marker}", m.model_id),
                            m.config,
                            m.features,
                            m.trees,
                            m.split_layer,
                            m.checksum
                        );
                    }
                    Ok(())
                }
                other => Err(CliError::Usage(format!(
                    "unexpected reply to ListModels: {other:?}"
                ))),
            }
        }
    }
}

fn cmd_bench_serve(args: &Args) -> Result<(), CliError> {
    let addr: String = args
        .get_str("addr")
        .ok_or_else(|| CliError::Usage("--addr HOST:PORT required".into()))?
        .into();
    let defaults = BenchConfig::default();
    let io_ms: u64 = args.get_or("timeout-ms", defaults.timeouts.io_ms)?;
    let attack = match (args.get_str("attack-dir"), args.get_str("attack-target")) {
        (None, None) => None,
        (Some(dir), Some(target)) => {
            let base = Path::new(dir).join(target);
            Some(AttackWorkload {
                challenge: fs::read_to_string(base.with_extension("challenge"))?,
                truth: fs::read_to_string(base.with_extension("truth"))?,
                threshold: args.get_or("attack-threshold", 0.5)?,
                detail: args.get_or("attack-detail", false)?,
            })
        }
        _ => {
            return Err(CliError::Usage(
                "--attack-dir and --attack-target go together".into(),
            ))
        }
    };
    if attack.is_none()
        && (args.get_str("attack-threshold").is_some() || args.get_str("attack-detail").is_some())
    {
        return Err(CliError::Usage(
            "--attack-threshold/--attack-detail require --attack-dir and --attack-target".into(),
        ));
    }
    let config = BenchConfig {
        connections: args.get_or("connections", defaults.connections)?,
        requests_per_connection: args.get_or("requests", defaults.requests_per_connection)?,
        batch_size: args.get_or("batch", defaults.batch_size)?,
        seed: args.get_or("seed", defaults.seed)?,
        timeouts: ClientTimeouts {
            io_ms,
            ..defaults.timeouts
        },
        retry: RetryPolicy::with_retries(args.get_or("retries", 3u32)?),
        model_id: args.get_str("model-id").map(str::to_owned),
        wire: args.get_or("wire", Wire::Ndjson)?,
        pipeline: args.get_or("pipeline", defaults.pipeline)?,
        json_payload: args.get_or("json-payload", defaults.json_payload)?,
        attack,
    };
    if config.connections == 0
        || config.requests_per_connection == 0
        || config.batch_size == 0
        || config.pipeline == 0
    {
        return Err(CliError::Usage(
            "--connections, --requests, --batch, and --pipeline must all be >= 1".into(),
        ));
    }
    let report = bench(&addr, &config)?;
    println!("{report}");
    if let Some(path) = args.get_str("json") {
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| CliError::Usage(format!("report serialization failed: {e}")))?;
        fs::write(path, json + "\n")?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_names_parse_with_and_without_y() {
        assert_eq!(parse_config("imp-11").expect("ok").name, "Imp-11");
        assert_eq!(parse_config("IMP9Y").expect("ok").name, "Imp-9Y");
        assert_eq!(parse_config("ml-9").expect("ok").name, "ML-9");
        assert!(parse_config("rococo").is_err());
    }

    #[test]
    fn gen_then_info_then_attack_roundtrip() {
        let dir = std::env::temp_dir().join("splitmfg_cli_test");
        let _ = fs::remove_dir_all(&dir);
        let gen = Args::parse(
            [
                "gen",
                "--out",
                dir.to_str().expect("utf8"),
                "--scale",
                "0.01",
                "--split",
                "8",
            ]
            .iter()
            .map(|s| (*s).to_owned()),
        )
        .expect("parses");
        dispatch(&gen).expect("gen runs");
        let views = load_dir(dir.to_str().expect("utf8")).expect("loads");
        assert_eq!(views.len(), 5);

        let attack = Args::parse(
            [
                "attack",
                "--dir",
                dir.to_str().expect("utf8"),
                "--target",
                "sb1",
                "--config",
                "imp-9",
            ]
            .iter()
            .map(|s| (*s).to_owned()),
        )
        .expect("parses");
        dispatch(&attack).expect("attack runs");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn threads_flag_parses_and_rejects_garbage() {
        let dir = std::env::temp_dir().join("splitmfg_cli_test_threads");
        let _ = fs::remove_dir_all(&dir);
        let gen = Args::parse(
            [
                "gen",
                "--out",
                dir.to_str().expect("utf8"),
                "--scale",
                "0.01",
                "--split",
                "8",
            ]
            .iter()
            .map(|s| (*s).to_owned()),
        )
        .expect("parses");
        dispatch(&gen).expect("gen runs");
        let base = [
            "attack",
            "--dir",
            dir.to_str().expect("utf8"),
            "--target",
            "sb1",
            "--config",
            "imp-9",
        ];
        for threads in ["2", "sequential", "auto"] {
            let mut argv: Vec<String> = base.iter().map(|s| (*s).to_owned()).collect();
            argv.extend(["--threads".to_owned(), threads.to_owned()]);
            let attack = Args::parse(argv).expect("parses");
            dispatch(&attack).expect("attack runs");
        }
        let mut argv: Vec<String> = base.iter().map(|s| (*s).to_owned()).collect();
        argv.extend(["--threads".to_owned(), "banana".to_owned()]);
        let attack = Args::parse(argv).expect("parses");
        assert!(matches!(dispatch(&attack), Err(CliError::Args(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_command_reports_usage() {
        let args = Args::parse(["frobnicate"].iter().map(|s| (*s).to_owned())).expect("parses");
        assert!(matches!(dispatch(&args), Err(CliError::Usage(_))));
    }

    fn dispatch_tokens(tokens: &[&str]) -> Result<(), CliError> {
        dispatch(&Args::parse(tokens.iter().map(|s| (*s).to_owned())).expect("parses"))
    }

    #[test]
    fn unknown_flags_are_typed_errors_not_ignored() {
        // A typo'd flag must surface as ParseArgsError::UnknownFlag for
        // every subcommand, not silently fall back to the default.
        for tokens in [
            &["attack", "--dir", "x", "--target", "sb1", "--treads", "4"][..],
            &["gen", "--out", "x", "--scael", "0.1"][..],
            &["info", "--dir", "x", "--verbose", "1"][..],
            &["train", "--dir", "x", "--out", "y", "--model", "z"][..],
            &["serve", "--model", "x", "--port", "80"][..],
            &["bench-serve", "--addr", "x", "--conns", "2"][..],
        ] {
            let err = dispatch_tokens(tokens).expect_err("must reject");
            assert!(
                matches!(
                    err,
                    CliError::Args(crate::args::ParseArgsError::UnknownFlag { .. })
                ),
                "{tokens:?} -> {err:?}"
            );
        }
    }

    #[test]
    fn bad_threads_is_a_typed_bad_value() {
        let err = dispatch_tokens(&["train", "--dir", "x", "--out", "y", "--threads", "many"])
            .expect_err("must reject");
        assert!(
            matches!(
                err,
                CliError::Args(crate::args::ParseArgsError::BadValue { ref flag, .. })
                    if flag == "threads"
            ),
            "{err:?}"
        );
    }

    #[test]
    fn bad_tree_backend_is_a_typed_bad_value() {
        // Must fail on flag parsing — before any challenge file is read.
        for cmd in [
            &["attack", "--dir", "x", "--target", "sb1"][..],
            &["pa", "--dir", "x", "--target", "sb1"][..],
            &["train", "--dir", "x", "--out", "y"][..],
        ] {
            let mut tokens: Vec<&str> = cmd.to_vec();
            tokens.extend(["--tree-backend", "histogramish"]);
            let err = dispatch_tokens(&tokens).expect_err("must reject");
            assert!(
                matches!(
                    err,
                    CliError::Args(crate::args::ParseArgsError::BadValue { ref flag, .. })
                        if flag == "tree-backend"
                ),
                "{tokens:?} -> {err:?}"
            );
        }
    }

    #[test]
    fn bad_enumeration_is_a_typed_bad_value() {
        // Must fail on flag parsing — before any challenge file is read.
        for cmd in [
            &["attack", "--dir", "x", "--target", "sb1"][..],
            &["pa", "--dir", "x", "--target", "sb1"][..],
            &["serve", "--model", "x"][..],
        ] {
            let mut tokens: Vec<&str> = cmd.to_vec();
            tokens.extend(["--enumeration", "exhaustive"]);
            let err = dispatch_tokens(&tokens).expect_err("must reject");
            assert!(
                matches!(
                    err,
                    CliError::Args(crate::args::ParseArgsError::BadValue { ref flag, .. })
                        if flag == "enumeration"
                ),
                "{tokens:?} -> {err:?}"
            );
        }
    }

    #[test]
    fn enumeration_flag_accepts_both_strategies() {
        let dir = std::env::temp_dir().join("splitmfg_cli_test_enumeration");
        let _ = fs::remove_dir_all(&dir);
        dispatch_tokens(&[
            "gen",
            "--out",
            dir.to_str().expect("utf8"),
            "--scale",
            "0.01",
            "--split",
            "8",
        ])
        .expect("gen runs");
        for enumeration in ["spatial", "all-pairs"] {
            dispatch_tokens(&[
                "attack",
                "--dir",
                dir.to_str().expect("utf8"),
                "--target",
                "sb1",
                "--config",
                "imp-9",
                "--enumeration",
                enumeration,
            ])
            .expect("attack runs with either enumeration");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tree_backend_flag_accepts_both_backends() {
        let dir = std::env::temp_dir().join("splitmfg_cli_test_tree_backend");
        let _ = fs::remove_dir_all(&dir);
        dispatch_tokens(&[
            "gen",
            "--out",
            dir.to_str().expect("utf8"),
            "--scale",
            "0.01",
            "--split",
            "8",
        ])
        .expect("gen runs");
        for backend in ["binned", "reference"] {
            dispatch_tokens(&[
                "attack",
                "--dir",
                dir.to_str().expect("utf8"),
                "--target",
                "sb1",
                "--config",
                "imp-9",
                "--tree-backend",
                backend,
            ])
            .expect("attack runs with either backend");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hardening_flags_reject_garbage_with_typed_errors() {
        // The robustness knobs must fail closed on malformed values —
        // before any model file is touched.
        for (tokens, flag) in [
            (
                &["serve", "--model", "x", "--request-timeout-ms", "soon"][..],
                "request-timeout-ms",
            ),
            (
                &["serve", "--model", "x", "--idle-timeout-ms", "-5"][..],
                "idle-timeout-ms",
            ),
            (
                &["serve", "--model", "x", "--max-request-bytes", "big"][..],
                "max-request-bytes",
            ),
            (
                &["serve", "--model", "x", "--max-queue", "deep"][..],
                "max-queue",
            ),
            (
                &["serve", "--model", "x", "--batch-linger-us", "soonish"][..],
                "batch-linger-us",
            ),
            (
                &["serve", "--model", "x", "--batch-linger-us", "-5"][..],
                "batch-linger-us",
            ),
            (
                &["serve", "--model", "x", "--batch-linger-us", "100us"][..],
                "batch-linger-us",
            ),
            (
                &["bench-serve", "--addr", "x", "--retries", "forever"][..],
                "retries",
            ),
            (
                &["bench-serve", "--addr", "x", "--timeout-ms", "never"][..],
                "timeout-ms",
            ),
            (
                &["bench-serve", "--addr", "x", "--pipeline", "wide"][..],
                "pipeline",
            ),
            (
                &["bench-serve", "--addr", "x", "--json-payload", "yep"][..],
                "json-payload",
            ),
        ] {
            let err = dispatch_tokens(tokens).expect_err("must reject");
            assert!(
                matches!(
                    err,
                    CliError::Args(crate::args::ParseArgsError::BadValue { flag: ref f, .. })
                        if f == flag
                ),
                "{tokens:?} -> {err:?}"
            );
        }
    }

    #[test]
    fn bench_attack_flags_travel_as_a_pair() {
        // The workload flags are validated before any socket is opened.
        let err = dispatch_tokens(&["bench-serve", "--addr", "x", "--attack-dir", "d"])
            .expect_err("must reject");
        assert!(
            matches!(err, CliError::Usage(ref m) if m.contains("go together")),
            "{err:?}"
        );
        let err = dispatch_tokens(&["bench-serve", "--addr", "x", "--attack-detail", "true"])
            .expect_err("must reject");
        assert!(
            matches!(err, CliError::Usage(ref m) if m.contains("require")),
            "{err:?}"
        );
    }

    #[test]
    fn missing_model_path_is_a_typed_artifact_io_error() {
        let err = dispatch_tokens(&[
            "attack",
            "--dir",
            "x",
            "--target",
            "sb1",
            "--model",
            "/nonexistent/model.smartifact",
        ])
        .expect_err("must reject");
        // The missing challenge dir is checked first; point at a real dir.
        let dir = std::env::temp_dir().join("splitmfg_cli_missing_model");
        let _ = fs::remove_dir_all(&dir);
        dispatch_tokens(&[
            "gen",
            "--out",
            dir.to_str().expect("utf8"),
            "--scale",
            "0.01",
        ])
        .expect("gen runs");
        let err2 = dispatch_tokens(&[
            "attack",
            "--dir",
            dir.to_str().expect("utf8"),
            "--target",
            "sb1",
            "--model",
            "/nonexistent/model.smartifact",
        ])
        .expect_err("must reject");
        assert!(
            matches!(err2, CliError::Artifact(ArtifactError::Io(_))),
            "{err2:?}"
        );
        // Without a directory the i/o error on --dir wins, also typed.
        assert!(matches!(err, CliError::Io(_)), "{err:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn model_and_config_flags_are_mutually_exclusive() {
        let dir = std::env::temp_dir().join("splitmfg_cli_model_conflict");
        let _ = fs::remove_dir_all(&dir);
        dispatch_tokens(&[
            "gen",
            "--out",
            dir.to_str().expect("utf8"),
            "--scale",
            "0.01",
        ])
        .expect("gen runs");
        let err = dispatch_tokens(&[
            "attack",
            "--dir",
            dir.to_str().expect("utf8"),
            "--target",
            "sb1",
            "--model",
            "whatever.model",
            "--config",
            "imp-9",
        ])
        .expect_err("must reject");
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_and_bench_serve_validate_required_flags() {
        assert!(matches!(
            dispatch_tokens(&["serve"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            dispatch_tokens(&["bench-serve"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            dispatch_tokens(&["bench-serve", "--addr", "x", "--connections", "0"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            dispatch_tokens(&["train", "--dir", "x"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn registry_flag_combinations_fail_closed_as_usage_errors() {
        // Every invalid combination must die on validation — before any
        // file, socket, or training run is touched (hence the bogus paths).
        for tokens in [
            // serve: exactly one source, registry-only options gated.
            &["serve", "--model", "m", "--registry", "r"][..],
            &["serve", "--model", "m", "--default-model", "x"][..],
            &["serve", "--model", "m", "--shadow-model", "x"][..],
            &["serve", "--shadow-fraction", "0.5", "--model", "m"][..],
            // train: exactly one sink, --model-id tied to --registry.
            &["train", "--dir", "d", "--out", "f", "--registry", "r"][..],
            &["train", "--dir", "d", "--out", "f", "--model-id", "x"][..],
            &[
                "train",
                "--dir",
                "d",
                "--out",
                "f",
                "--make-default",
                "true",
            ][..],
            &["train", "--dir", "d", "--registry", "r"][..],
            // models: exactly one source.
            &["models"][..],
            &["models", "--registry", "r", "--addr", "a"][..],
        ] {
            let err = dispatch_tokens(tokens).expect_err("must reject");
            assert!(matches!(err, CliError::Usage(_)), "{tokens:?} -> {err:?}");
        }
        // An out-of-range shadow fraction is caught in the CLI too, with
        // a message naming the flag (the server would also reject it).
        let err = dispatch_tokens(&[
            "serve",
            "--registry",
            "/nonexistent",
            "--shadow-model",
            "x",
            "--shadow-fraction",
            "1.5",
        ])
        .expect_err("must reject");
        // The registry read happens first and /nonexistent is missing, so
        // either typed failure is acceptable; it must not bind a socket.
        assert!(
            matches!(err, CliError::Usage(_) | CliError::Registry(_)),
            "{err:?}"
        );
    }

    #[test]
    fn train_publishes_into_a_registry_and_models_lists_it() {
        let dir = std::env::temp_dir().join("splitmfg_cli_registry_roundtrip");
        let _ = fs::remove_dir_all(&dir);
        let dir_s = dir.to_str().expect("utf8");
        dispatch_tokens(&["gen", "--out", dir_s, "--scale", "0.01", "--split", "8"])
            .expect("gen runs");
        let reg = dir.join("registry");
        let reg_s = reg.to_str().expect("utf8");

        // First publish becomes the default implicitly.
        dispatch_tokens(&[
            "train",
            "--dir",
            dir_s,
            "--target",
            "sb1",
            "--config",
            "imp-9",
            "--registry",
            reg_s,
            "--model-id",
            "incumbent",
        ])
        .expect("first publish runs");
        // Second publish takes over the default explicitly.
        dispatch_tokens(&[
            "train",
            "--dir",
            dir_s,
            "--target",
            "sb5",
            "--config",
            "imp-9",
            "--registry",
            reg_s,
            "--model-id",
            "retrained",
            "--make-default",
            "true",
        ])
        .expect("second publish runs");

        let index = RegistryIndex::load(&reg).expect("index loads");
        assert_eq!(index.default_model, "retrained");
        assert_eq!(index.entries.len(), 2);
        assert!(index.entries.iter().any(|e| e.model_id == "incumbent"));
        let retrained = index
            .entries
            .iter()
            .find(|e| e.model_id == "retrained")
            .expect("published");
        assert_eq!(retrained.meta.excluded_target.as_deref(), Some("sb5"));
        assert!(retrained.checksum.starts_with("fnv1a64:"));

        dispatch_tokens(&["models", "--registry", reg_s]).expect("offline listing runs");

        // A path-traversal model id is a typed registry rejection.
        let err = dispatch_tokens(&[
            "train",
            "--dir",
            dir_s,
            "--registry",
            reg_s,
            "--model-id",
            "../evil",
            "--config",
            "imp-9",
        ])
        .expect_err("bad id must be rejected");
        assert!(
            matches!(err, CliError::Registry(RegistryError::BadModelId(_))),
            "{err:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn train_then_attack_with_model_skips_retraining() {
        let dir = std::env::temp_dir().join("splitmfg_cli_train_roundtrip");
        let _ = fs::remove_dir_all(&dir);
        let dir_s = dir.to_str().expect("utf8");
        dispatch_tokens(&["gen", "--out", dir_s, "--scale", "0.01", "--split", "8"])
            .expect("gen runs");
        let model_path = dir.join("sb1.model");
        let model_s = model_path.to_str().expect("utf8");
        dispatch_tokens(&[
            "train", "--dir", dir_s, "--target", "sb1", "--config", "imp-9", "--out", model_s,
        ])
        .expect("train runs");
        dispatch_tokens(&[
            "attack", "--dir", dir_s, "--target", "sb1", "--model", model_s,
        ])
        .expect("attack with artifact runs");
        dispatch_tokens(&["pa", "--dir", dir_s, "--target", "sb1", "--model", model_s])
            .expect("pa with artifact runs");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_target_is_a_usage_error() {
        let dir = std::env::temp_dir().join("splitmfg_cli_test2");
        let _ = fs::remove_dir_all(&dir);
        let gen = Args::parse(
            [
                "gen",
                "--out",
                dir.to_str().expect("utf8"),
                "--scale",
                "0.01",
            ]
            .iter()
            .map(|s| (*s).to_owned()),
        )
        .expect("parses");
        dispatch(&gen).expect("gen runs");
        let attack = Args::parse(
            [
                "attack",
                "--dir",
                dir.to_str().expect("utf8"),
                "--target",
                "nope",
            ]
            .iter()
            .map(|s| (*s).to_owned()),
        )
        .expect("parses");
        assert!(matches!(dispatch(&attack), Err(CliError::Usage(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_flags_reject_garbage_with_typed_errors() {
        // Garbage values must die on flag parsing — before combination
        // validation and before any challenge file is read, so the
        // diagnostic names the malformed flag even when the combo is
        // also wrong.
        for (tokens, flag) in [
            (
                &[
                    "attack",
                    "--dir",
                    "x",
                    "--target",
                    "sb1",
                    "--checkpoint-dir",
                    "ck",
                    "--checkpoint-every",
                    "banana",
                ][..],
                "checkpoint-every",
            ),
            (
                &[
                    "pa",
                    "--dir",
                    "x",
                    "--target",
                    "sb1",
                    "--checkpoint-dir",
                    "ck",
                    "--resume",
                    "maybe",
                ][..],
                "resume",
            ),
            (
                &[
                    "attack", "--dir", "x", "--target", "sb1", "--resume", "perhaps",
                ][..],
                "resume",
            ),
            (
                &["models", "--registry", "r", "--verify", "junk"][..],
                "verify",
            ),
        ] {
            let err = dispatch_tokens(tokens).expect_err("must reject");
            assert!(
                matches!(
                    err,
                    CliError::Args(crate::args::ParseArgsError::BadValue { flag: ref f, .. })
                        if f == flag
                ),
                "{tokens:?} -> {err:?}"
            );
        }
    }

    #[test]
    fn checkpoint_flag_combinations_fail_closed_as_usage_errors() {
        for tokens in [
            // --resume / --checkpoint-every are meaningless without a
            // checkpoint directory to act on.
            &[
                "attack", "--dir", "x", "--target", "sb1", "--resume", "true",
            ][..],
            &[
                "attack",
                "--dir",
                "x",
                "--target",
                "sb1",
                "--checkpoint-every",
                "10",
            ][..],
            &["pa", "--dir", "x", "--target", "sb1", "--resume", "true"][..],
            &[
                "pa",
                "--dir",
                "x",
                "--target",
                "sb1",
                "--checkpoint-every",
                "10",
            ][..],
            // A zero-target shard can never make progress.
            &[
                "attack",
                "--dir",
                "x",
                "--target",
                "sb1",
                "--checkpoint-dir",
                "ck",
                "--checkpoint-every",
                "0",
            ][..],
            // --verify is an offline registry sweep; it cannot ride a
            // network listing.
            &["models", "--addr", "127.0.0.1:1", "--verify", "true"][..],
        ] {
            let err = dispatch_tokens(tokens).expect_err("must reject");
            assert!(matches!(err, CliError::Usage(_)), "{tokens:?} -> {err:?}");
        }
    }

    #[test]
    fn attack_with_checkpoint_completes_removes_checkpoint_and_writes_json() {
        let dir = std::env::temp_dir().join("splitmfg_cli_checkpoint_roundtrip");
        let _ = fs::remove_dir_all(&dir);
        let dir_s = dir.to_str().expect("utf8");
        dispatch_tokens(&["gen", "--out", dir_s, "--scale", "0.01", "--split", "8"])
            .expect("gen runs");
        let ck = dir.join("ck");
        let json = dir.join("out.json");
        dispatch_tokens(&[
            "attack",
            "--dir",
            dir_s,
            "--target",
            "sb1",
            "--config",
            "imp-9",
            "--checkpoint-dir",
            ck.to_str().expect("utf8"),
            "--checkpoint-every",
            "2",
            "--json",
            json.to_str().expect("utf8"),
        ])
        .expect("checkpointed attack runs");
        assert!(
            !ck.join("attack-sb1.ckpt").exists(),
            "checkpoint must be removed once the run completes"
        );
        let dump = fs::read_to_string(&json).expect("json dump written");
        assert!(dump.starts_with("{\"scored\":"), "{dump:.40}");
        assert!(dump.contains("\"curve\":"), "{dump:.40}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn models_verify_passes_a_good_registry_and_fails_a_corrupt_one() {
        let dir = std::env::temp_dir().join("splitmfg_cli_verify_sweep");
        let _ = fs::remove_dir_all(&dir);
        let dir_s = dir.to_str().expect("utf8");
        dispatch_tokens(&["gen", "--out", dir_s, "--scale", "0.01", "--split", "8"])
            .expect("gen runs");
        let reg = dir.join("registry");
        let reg_s = reg.to_str().expect("utf8");
        dispatch_tokens(&[
            "train",
            "--dir",
            dir_s,
            "--target",
            "sb1",
            "--config",
            "imp-9",
            "--registry",
            reg_s,
            "--model-id",
            "m1",
        ])
        .expect("publish runs");
        dispatch_tokens(&["models", "--registry", reg_s, "--verify", "true"])
            .expect("a freshly published registry verifies clean");

        // Flip one byte in the artifact: the sweep must report the model
        // corrupt and exit nonzero.
        let artifact = reg.join("m1.model");
        let mut bytes = fs::read(&artifact).expect("artifact exists");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&artifact, &bytes).expect("corrupts");
        let err = dispatch_tokens(&["models", "--registry", reg_s, "--verify", "true"])
            .expect_err("a corrupt registry must fail verification");
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
        assert!(err.to_string().contains("1 of 1"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
