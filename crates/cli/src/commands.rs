//! Subcommand implementations for the `splitmfg` binary.

use std::fs;
use std::path::{Path, PathBuf};

use sm_attack::attack::{AttackConfig, ScoreOptions, TrainedAttack};
use sm_attack::proximity::{proximity_attack, validate_pa_fraction, DEFAULT_PA_FRACTIONS};
use sm_attack::Parallelism;
use sm_layout::io::{read_challenge, write_challenge, write_truth};
use sm_layout::{SplitLayer, SplitView, Suite};

use crate::args::Args;

/// Top-level CLI error.
#[derive(Debug)]
pub enum CliError {
    /// Flag parsing / validation failure.
    Args(crate::args::ParseArgsError),
    /// Filesystem failure.
    Io(std::io::Error),
    /// Challenge parse failure.
    Parse(sm_layout::io::ParseChallengeError),
    /// Anything the attack layer reports.
    Attack(sm_attack::AttackError),
    /// User-level misuse (unknown command, missing target, ...).
    Usage(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "i/o: {e}"),
            CliError::Parse(e) => write!(f, "parse: {e}"),
            CliError::Attack(e) => write!(f, "attack: {e}"),
            CliError::Usage(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<crate::args::ParseArgsError> for CliError {
    fn from(e: crate::args::ParseArgsError) -> Self {
        CliError::Args(e)
    }
}
impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}
impl From<sm_layout::io::ParseChallengeError> for CliError {
    fn from(e: sm_layout::io::ParseChallengeError) -> Self {
        CliError::Parse(e)
    }
}
impl From<sm_attack::AttackError> for CliError {
    fn from(e: sm_attack::AttackError) -> Self {
        CliError::Attack(e)
    }
}

/// Routes a parsed command line to its implementation.
///
/// # Errors
///
/// Returns a [`CliError`] describing the failure; `main` prints it.
pub fn dispatch(args: &Args) -> Result<(), CliError> {
    match args.command.as_str() {
        "gen" => cmd_gen(args),
        "info" => cmd_info(args),
        "attack" => cmd_attack(args),
        "pa" => cmd_pa(args),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command '{other}' (try 'help')"
        ))),
    }
}

/// Prints usage text.
pub fn print_help() {
    eprintln!(
        "splitmfg — ML security analysis of split manufacturing\n\
         \n\
         commands:\n\
         \x20 gen    --out DIR [--scale 0.2] [--split 8] [--seed N]   generate the 5-design suite\n\
         \x20 info   --dir DIR                                        summarise challenge files\n\
         \x20 attack --dir DIR --target NAME [--config imp-11]\n\
         \x20        [--threshold 0.5] [--threads auto]               leave-one-out ML attack\n\
         \x20 pa     --dir DIR --target NAME [--config imp-9y]\n\
         \x20        [--threads auto]                                 validated proximity attack\n\
         \n\
         configs: ml-9, imp-9, imp-7, imp-11, and Y variants (imp-9y, ...)\n\
         --threads takes 'auto', 'sequential', or a worker count; results\n\
         are identical for every setting (deterministic parallelism)"
    );
}

fn parse_config(name: &str) -> Result<AttackConfig, CliError> {
    let lower = name.to_ascii_lowercase();
    let (base, y) = match lower.strip_suffix('y') {
        Some(stem) => (stem, true),
        None => (lower.as_str(), false),
    };
    let cfg = match base {
        "ml-9" | "ml9" => AttackConfig::ml9(),
        "imp-9" | "imp9" => AttackConfig::imp9(),
        "imp-7" | "imp7" => AttackConfig::imp7(),
        "imp-11" | "imp11" => AttackConfig::imp11(),
        _ => return Err(CliError::Usage(format!("unknown config '{name}'"))),
    };
    Ok(if y { cfg.with_y_limit() } else { cfg })
}

fn cmd_gen(args: &Args) -> Result<(), CliError> {
    let out: String = args
        .get_str("out")
        .ok_or_else(|| CliError::Usage("--out DIR required".into()))?
        .into();
    let scale: f64 = args.get_or("scale", 0.2)?;
    let split: u8 = args.get_or("split", 8)?;
    let layer = SplitLayer::new(split).map_err(|e| CliError::Usage(e.to_string()))?;
    fs::create_dir_all(&out)?;
    eprintln!("generating 5-design suite at scale {scale}, split layer {split} ...");
    let suite = Suite::ispd2011_like(scale).map_err(|e| CliError::Usage(e.to_string()))?;
    for bench in suite.benchmarks() {
        let view = bench.split(layer);
        let base = Path::new(&out).join(view.name.clone());
        fs::write(base.with_extension("challenge"), write_challenge(&view))?;
        fs::write(base.with_extension("truth"), write_truth(&view))?;
        println!(
            "{}: {} v-pins -> {}.challenge / .truth",
            view.name,
            view.num_vpins(),
            base.display()
        );
    }
    Ok(())
}

fn load_dir(dir: &str) -> Result<Vec<SplitView>, CliError> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "challenge"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(CliError::Usage(format!("no .challenge files in {dir}")));
    }
    let mut views = Vec::with_capacity(paths.len());
    for p in paths {
        let challenge = fs::read_to_string(&p)?;
        let truth = fs::read_to_string(p.with_extension("truth"))?;
        views.push(read_challenge(&challenge, &truth)?);
    }
    Ok(views)
}

fn split_target<'v>(
    views: &'v [SplitView],
    target: &str,
) -> Result<(Vec<&'v SplitView>, &'v SplitView), CliError> {
    let test = views
        .iter()
        .find(|v| v.name == target)
        .ok_or_else(|| CliError::Usage(format!("target '{target}' not found")))?;
    let train: Vec<&SplitView> = views.iter().filter(|v| v.name != target).collect();
    if train.is_empty() {
        return Err(CliError::Usage(
            "need at least one non-target design for training".into(),
        ));
    }
    Ok((train, test))
}

fn cmd_info(args: &Args) -> Result<(), CliError> {
    let dir: String = args
        .get_str("dir")
        .ok_or_else(|| CliError::Usage("--dir DIR required".into()))?
        .into();
    let views = load_dir(&dir)?;
    println!(
        "{:<8} {:>7} {:>9} {:>14} {:>12}",
        "design", "split", "v-pins", "die (um x um)", "drivers"
    );
    for v in &views {
        let drivers = v.vpins().iter().filter(|p| p.drives()).count();
        println!(
            "{:<8} {:>7} {:>9} {:>14} {:>12}",
            v.name,
            v.split.to_string(),
            v.num_vpins(),
            format!("{}x{}", v.die.width() / 1000, v.die.height() / 1000),
            drivers
        );
    }
    Ok(())
}

fn cmd_attack(args: &Args) -> Result<(), CliError> {
    let dir: String = args
        .get_str("dir")
        .ok_or_else(|| CliError::Usage("--dir DIR required".into()))?
        .into();
    let target: String = args.require("target")?;
    let parallelism: Parallelism = args.get_or("threads", Parallelism::Auto)?;
    let config =
        parse_config(args.get_str("config").unwrap_or("imp-11"))?.with_parallelism(parallelism);
    let threshold: f64 = args.get_or("threshold", 0.5)?;

    let views = load_dir(&dir)?;
    let (train, test) = split_target(&views, &target)?;
    eprintln!("training {} on {} designs ...", config.name, train.len());
    let model = TrainedAttack::train(&config, &train, None)?;
    eprintln!(
        "scoring {} ({} v-pins, {} training samples, radius {:?}) ...",
        test.name,
        test.num_vpins(),
        model.num_training_samples(),
        model.radius()
    );
    let scored = model.score(
        test,
        &ScoreOptions {
            parallelism,
            ..ScoreOptions::default()
        },
    );
    println!("pairs evaluated : {}", scored.pairs_scored);
    println!("threshold       : {threshold}");
    println!("mean |LoC|      : {:.2}", scored.mean_loc_at(threshold));
    println!(
        "accuracy        : {:.2}%",
        100.0 * scored.accuracy_at(threshold)
    );
    println!("max accuracy    : {:.2}%", 100.0 * scored.max_accuracy());
    let curve = scored.curve();
    for acc in [0.95, 0.90, 0.80] {
        match curve.min_loc_at_accuracy(acc) {
            Some(pt) => println!(
                "|LoC| @ {:>3.0}% acc: {:.2} (threshold {:.3})",
                acc * 100.0,
                pt.mean_loc,
                pt.threshold
            ),
            None => println!(
                "|LoC| @ {:>3.0}% acc: unreachable (saturation)",
                acc * 100.0
            ),
        }
    }
    Ok(())
}

fn cmd_pa(args: &Args) -> Result<(), CliError> {
    let dir: String = args
        .get_str("dir")
        .ok_or_else(|| CliError::Usage("--dir DIR required".into()))?
        .into();
    let target: String = args.require("target")?;
    let parallelism: Parallelism = args.get_or("threads", Parallelism::Auto)?;
    let config =
        parse_config(args.get_str("config").unwrap_or("imp-9"))?.with_parallelism(parallelism);
    let seed: u64 = args.get_or("seed", 17)?;

    let views = load_dir(&dir)?;
    let (train, test) = split_target(&views, &target)?;
    eprintln!("validating PA-LoC fractions on {} designs ...", train.len());
    let val = validate_pa_fraction(&config, &train, &DEFAULT_PA_FRACTIONS, seed)?;
    for (f, r) in &val.rates {
        println!(
            "fraction {:>7.3}% -> validation success {:>6.2}%",
            f * 100.0,
            r * 100.0
        );
    }
    println!("selected fraction: {:.3}%", val.best_fraction * 100.0);
    let model = TrainedAttack::train(&config, &train, None)?;
    let scored = model.score(
        test,
        &ScoreOptions {
            parallelism,
            ..ScoreOptions::default()
        },
    );
    let outcome = proximity_attack(&scored, test, val.best_fraction, seed ^ 1);
    println!("proximity attack on {}: {}", test.name, outcome);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_names_parse_with_and_without_y() {
        assert_eq!(parse_config("imp-11").expect("ok").name, "Imp-11");
        assert_eq!(parse_config("IMP9Y").expect("ok").name, "Imp-9Y");
        assert_eq!(parse_config("ml-9").expect("ok").name, "ML-9");
        assert!(parse_config("rococo").is_err());
    }

    #[test]
    fn gen_then_info_then_attack_roundtrip() {
        let dir = std::env::temp_dir().join("splitmfg_cli_test");
        let _ = fs::remove_dir_all(&dir);
        let gen = Args::parse(
            [
                "gen",
                "--out",
                dir.to_str().expect("utf8"),
                "--scale",
                "0.01",
                "--split",
                "8",
            ]
            .iter()
            .map(|s| (*s).to_owned()),
        )
        .expect("parses");
        dispatch(&gen).expect("gen runs");
        let views = load_dir(dir.to_str().expect("utf8")).expect("loads");
        assert_eq!(views.len(), 5);

        let attack = Args::parse(
            [
                "attack",
                "--dir",
                dir.to_str().expect("utf8"),
                "--target",
                "sb1",
                "--config",
                "imp-9",
            ]
            .iter()
            .map(|s| (*s).to_owned()),
        )
        .expect("parses");
        dispatch(&attack).expect("attack runs");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn threads_flag_parses_and_rejects_garbage() {
        let dir = std::env::temp_dir().join("splitmfg_cli_test_threads");
        let _ = fs::remove_dir_all(&dir);
        let gen = Args::parse(
            [
                "gen",
                "--out",
                dir.to_str().expect("utf8"),
                "--scale",
                "0.01",
                "--split",
                "8",
            ]
            .iter()
            .map(|s| (*s).to_owned()),
        )
        .expect("parses");
        dispatch(&gen).expect("gen runs");
        let base = [
            "attack",
            "--dir",
            dir.to_str().expect("utf8"),
            "--target",
            "sb1",
            "--config",
            "imp-9",
        ];
        for threads in ["2", "sequential", "auto"] {
            let mut argv: Vec<String> = base.iter().map(|s| (*s).to_owned()).collect();
            argv.extend(["--threads".to_owned(), threads.to_owned()]);
            let attack = Args::parse(argv).expect("parses");
            dispatch(&attack).expect("attack runs");
        }
        let mut argv: Vec<String> = base.iter().map(|s| (*s).to_owned()).collect();
        argv.extend(["--threads".to_owned(), "banana".to_owned()]);
        let attack = Args::parse(argv).expect("parses");
        assert!(matches!(dispatch(&attack), Err(CliError::Args(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_command_reports_usage() {
        let args = Args::parse(["frobnicate"].iter().map(|s| (*s).to_owned())).expect("parses");
        assert!(matches!(dispatch(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn missing_target_is_a_usage_error() {
        let dir = std::env::temp_dir().join("splitmfg_cli_test2");
        let _ = fs::remove_dir_all(&dir);
        let gen = Args::parse(
            [
                "gen",
                "--out",
                dir.to_str().expect("utf8"),
                "--scale",
                "0.01",
            ]
            .iter()
            .map(|s| (*s).to_owned()),
        )
        .expect("parses");
        dispatch(&gen).expect("gen runs");
        let attack = Args::parse(
            [
                "attack",
                "--dir",
                dir.to_str().expect("utf8"),
                "--target",
                "nope",
            ]
            .iter()
            .map(|s| (*s).to_owned()),
        )
        .expect("parses");
        assert!(matches!(dispatch(&attack), Err(CliError::Usage(_))));
        let _ = fs::remove_dir_all(&dir);
    }
}
