//! `splitmfg` — command-line driver for the split-manufacturing security
//! toolkit.
//!
//! ```text
//! splitmfg gen         --out DIR [--scale 0.2] [--split 8]      generate challenges
//! splitmfg info        --dir DIR                                summarise challenges
//! splitmfg attack      --dir DIR --target sb1 [--config imp-11] run the ML attack
//! splitmfg pa          --dir DIR --target sb1 [--config imp-9y] proximity attack
//! splitmfg train       --dir DIR --out FILE [--target sb1]      write a model artifact
//! splitmfg serve       --model FILE [--addr 127.0.0.1:7878]     TCP inference server
//! splitmfg bench-serve --addr HOST:PORT [--json FILE]           load-test a server
//! splitmfg help                                                 this text
//! ```
//!
//! Challenges are plain-text `.challenge`/`.truth` pairs (see
//! `sm_layout::io`); the attack trains on every design in the directory
//! except the target (leave-one-out) and scores against the target's truth
//! file. `train` checkpoints that model into a versioned, checksummed
//! artifact; `attack --model`/`pa --model` reuse it without retraining, and
//! `serve` hosts it behind a newline-delimited-JSON TCP protocol (see
//! `sm_serve`).

mod args;
mod commands;

use args::Args;

/// Exit codes: 0 = success, 1 = error, 2 = bad command line, 3 = the run
/// was interrupted (SIGTERM/SIGINT) and drained cleanly — any checkpoint
/// on disk is complete and resumable with `--resume true`.
fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match Args::parse(argv) {
        Ok(args) => match commands::dispatch(&args) {
            Ok(()) => 0,
            Err(e @ commands::CliError::Interrupted { .. }) => {
                eprintln!("{e}");
                3
            }
            Err(e) => {
                eprintln!("error: {e}");
                1
            }
        },
        Err(e) => {
            eprintln!("error: {e}");
            commands::print_help();
            2
        }
    };
    std::process::exit(code);
}
