//! Black-box tests of the `splitmfg` binary: exit codes and which stream
//! each kind of output lands on.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_splitmfg"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn help_prints_usage_to_stdout_and_exits_zero() {
    for spelling in [&["help"][..], &["--help"][..], &["-h"][..]] {
        let out = run(spelling);
        assert_eq!(out.status.code(), Some(0), "{spelling:?}");
        let stdout = String::from_utf8(out.stdout).expect("utf8");
        assert!(stdout.contains("commands:"), "{spelling:?}: {stdout}");
        assert!(stdout.contains("bench-serve"), "{spelling:?}");
        assert!(
            out.stderr.is_empty(),
            "help must not write to stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn missing_command_prints_error_to_stderr_and_help_to_stdout() {
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("no subcommand"), "{stderr}");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("commands:"), "{stdout}");
}

#[test]
fn unknown_command_and_unknown_flag_exit_one_with_stderr_diagnostics() {
    let out = run(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command 'frobnicate'"));

    let out = run(&["info", "--dri", "somewhere"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(stderr.contains("unknown flag --dri"), "{stderr}");
}

#[test]
fn bad_threads_value_exits_one_with_typed_message() {
    let out = run(&["train", "--dir", "x", "--out", "y", "--threads", "banana"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(stderr.contains("--threads"), "{stderr}");
    assert!(stderr.contains("banana"), "{stderr}");
}
