//! Process-level crash/chaos tests of the `splitmfg attack` pipeline: kill
//! the binary at injected fail points (`SM_FAILPOINTS`), resume, and
//! require the resumed output to be *byte-identical* to an uninterrupted
//! golden run. Companion to the in-process proofs in
//! `crates/core/tests/checkpoint_resume.rs`.
#![cfg(unix)]

use std::os::unix::process::ExitStatusExt;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::OnceLock;

const SIGKILL: i32 = 9;

fn run_in(dir: &Path, args: &[&str], failpoints: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_splitmfg"));
    cmd.args(args).current_dir(dir).env_remove("SM_FAILPOINTS");
    if let Some(spec) = failpoints {
        cmd.env("SM_FAILPOINTS", spec);
    }
    cmd.output().expect("binary runs")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Shared fixture: a generated challenge suite, a trained model artifact,
/// and the golden (uninterrupted) attack output — built once, read by
/// every test.
struct Fixture {
    dir: PathBuf,
    golden: Vec<u8>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = std::env::temp_dir().join("smattack_chaos_fixture");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let out = run_in(
            &dir,
            &["gen", "--out", "suite", "--scale", "0.02", "--split", "8"],
            None,
        );
        assert_eq!(out.status.code(), Some(0), "gen: {}", stderr_of(&out));
        let out = run_in(
            &dir,
            &[
                "train",
                "--dir",
                "suite",
                "--target",
                "sb1",
                "--out",
                "model.bin",
            ],
            None,
        );
        assert_eq!(out.status.code(), Some(0), "train: {}", stderr_of(&out));
        let out = run_in(
            &dir,
            &[
                "attack",
                "--dir",
                "suite",
                "--target",
                "sb1",
                "--model",
                "model.bin",
                "--json",
                "golden.json",
            ],
            None,
        );
        assert_eq!(out.status.code(), Some(0), "golden: {}", stderr_of(&out));
        let golden = std::fs::read(dir.join("golden.json")).expect("golden json");
        Fixture { dir, golden }
    })
}

/// One killed-then-resumed cycle in its own checkpoint dir; returns the
/// output of the killed run so callers can assert how it died.
fn kill_and_resume(tag: &str, failpoints: &str) -> (Output, PathBuf) {
    let fx = fixture();
    let ck = format!("ck_{tag}");
    let _ = std::fs::remove_dir_all(fx.dir.join(&ck));
    let killed = run_in(
        &fx.dir,
        &[
            "attack",
            "--dir",
            "suite",
            "--target",
            "sb1",
            "--model",
            "model.bin",
            "--checkpoint-dir",
            &ck,
            "--checkpoint-every",
            "2",
        ],
        Some(failpoints),
    );
    (killed, fx.dir.join(ck))
}

fn resume_and_compare(tag: &str, ck: &Path) {
    let fx = fixture();
    let json = format!("resumed_{tag}.json");
    // No --checkpoint-every here: the resume runs with the (much larger)
    // default shard size, so the persisted cursor lands mid-shard — the
    // realign path must score the tail, not skip it.
    let out = run_in(
        &fx.dir,
        &[
            "attack",
            "--dir",
            "suite",
            "--target",
            "sb1",
            "--model",
            "model.bin",
            "--checkpoint-dir",
            ck.to_str().expect("utf8 path"),
            "--resume",
            "true",
            "--json",
            &json,
        ],
        None,
    );
    assert_eq!(
        out.status.code(),
        Some(0),
        "{tag} resume: {}",
        stderr_of(&out)
    );
    let resumed = std::fs::read(fx.dir.join(&json)).expect("resumed json");
    assert_eq!(
        resumed, fx.golden,
        "{tag}: resumed output differs from the uninterrupted golden run"
    );
    assert!(
        !ck.join("attack-sb1.ckpt").exists(),
        "{tag}: checkpoint must be removed after a completed resume"
    );
}

/// SIGKILL at three distinct checkpoint-write sites — before the tmp file
/// exists, after the tmp is written but before the rename, and after the
/// rename but before the directory fsync. Every site must leave either no
/// checkpoint or a valid one, and resuming must reproduce the golden
/// bytes exactly.
#[test]
fn sigkill_at_every_checkpoint_write_site_resumes_byte_identical() {
    for (tag, failpoints) in [
        ("before_tmp", "checkpoint.before_tmp=kill@2"),
        ("after_tmp", "checkpoint.after_tmp=kill@2"),
        ("after_rename", "checkpoint.after_rename=kill@2"),
        ("after_dir_sync", "checkpoint.after_dir_sync=kill@1"),
    ] {
        let (killed, ck) = kill_and_resume(tag, failpoints);
        assert_eq!(
            killed.status.signal(),
            Some(SIGKILL),
            "{tag}: expected death by SIGKILL, got {:?}",
            killed.status
        );
        resume_and_compare(tag, &ck);
    }
}

/// SIGTERM mid-run drains the in-flight shard, writes a final checkpoint,
/// and exits with the documented code 3; the checkpoint then resumes to
/// the golden bytes.
#[test]
fn sigterm_drains_to_a_resumable_checkpoint_and_exits_three() {
    let (out, ck) = kill_and_resume("term", "checkpoint.after_rename=term@1");
    assert_eq!(out.status.code(), Some(3), "stderr: {}", stderr_of(&out));
    let stderr = stderr_of(&out);
    assert!(stderr.contains("--resume true"), "{stderr}");
    assert!(
        ck.join("attack-sb1.ckpt").exists(),
        "a drained run must leave its checkpoint"
    );
    resume_and_compare("term", &ck);
}

#[test]
fn corrupt_checkpoint_refuses_to_resume_with_exit_one() {
    let (killed, ck) = kill_and_resume("corrupt", "checkpoint.after_rename=kill@2");
    assert_eq!(killed.status.signal(), Some(SIGKILL));
    let path = ck.join("attack-sb1.ckpt");
    let mut bytes = std::fs::read(&path).expect("checkpoint exists");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).expect("corrupts");
    let fx = fixture();
    let out = run_in(
        &fx.dir,
        &[
            "attack",
            "--dir",
            "suite",
            "--target",
            "sb1",
            "--model",
            "model.bin",
            "--checkpoint-dir",
            ck.to_str().expect("utf8 path"),
            "--resume",
            "true",
        ],
        None,
    );
    assert_eq!(out.status.code(), Some(1), "must refuse, not resume");
    let stderr = stderr_of(&out);
    assert!(stderr.contains("checksum"), "{stderr}");
    assert!(path.exists(), "refusal must leave the evidence in place");
}

/// `--resume true` with no checkpoint on disk is simply a fresh run.
#[test]
fn resume_with_no_checkpoint_is_a_fresh_start() {
    let fx = fixture();
    let ck = fx.dir.join("ck_fresh");
    let _ = std::fs::remove_dir_all(&ck);
    let json = "fresh.json";
    let out = run_in(
        &fx.dir,
        &[
            "attack",
            "--dir",
            "suite",
            "--target",
            "sb1",
            "--model",
            "model.bin",
            "--checkpoint-dir",
            ck.to_str().expect("utf8 path"),
            "--resume",
            "true",
            "--json",
            json,
        ],
        None,
    );
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    assert_eq!(
        std::fs::read(fx.dir.join(json)).expect("json written"),
        fx.golden
    );
}
