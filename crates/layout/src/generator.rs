//! Synthetic design generation: placed netlists with ISPD-2011-like
//! statistics.
//!
//! The paper evaluates on five industrial `superblue` layouts. We do not
//! have those (proprietary GDSII); instead this module generates seeded
//! synthetic designs that reproduce the layout *statistics* the attack
//! features depend on:
//!
//! - row-based placement with non-uniform pin density (hotspots, macros),
//! - nets whose sinks are mostly local to the driver (placers minimise
//!   wirelength) with a heavy tail of long nets,
//! - a wide cell-area distribution (drive strengths, flip-flops, macros).
//!
//! Routing — and hence v-pin creation — lives in [`crate::route`].

use rand::prelude::*;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::cells::{CellLibrary, PinDir, ROW_HEIGHT};
use crate::error::LayoutError;
use crate::geom::{Grid, Point, Rect};
use crate::netlist::{CellId, Netlist, PinRef};

/// A placement-density hotspot: cells are packed more tightly around it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hotspot {
    /// Centre, as a fraction of the die in each axis (`0.0..=1.0`).
    pub at: (f64, f64),
    /// Peak density multiplier added at the centre.
    pub amplitude: f64,
    /// Gaussian radius as a fraction of the die width.
    pub sigma: f64,
}

/// Per-split-layer cut-net targets for the router's layer assignment.
///
/// `cut at split L` = number of nets whose trunk uses a metal layer above
/// `M_L`. The three entries correspond to the split layers the paper
/// evaluates (V4, V6, V8) and must be non-increasing with height.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CutProfile {
    /// Nets cut at split layer 4 (trunk above M4).
    pub at_l4: u32,
    /// Nets cut at split layer 6.
    pub at_l6: u32,
    /// Nets cut at split layer 8 (nets using M9).
    pub at_l8: u32,
}

impl CutProfile {
    fn validate(&self, total_nets: u32) -> Result<(), LayoutError> {
        if self.at_l8 > self.at_l6 || self.at_l6 > self.at_l4 {
            return Err(LayoutError::InvalidSpec(
                "cut profile must be non-increasing with split layer".into(),
            ));
        }
        if self.at_l4 >= total_nets {
            return Err(LayoutError::InvalidSpec(format!(
                "cut profile at_l4={} must be below the net count {total_nets}",
                self.at_l4
            )));
        }
        Ok(())
    }
}

/// Full specification of a synthetic benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignSpec {
    /// Benchmark name, e.g. `sb1`.
    pub name: String,
    /// Number of standard-cell instances.
    pub num_cells: u32,
    /// Number of two-terminal-or-more nets.
    pub num_nets: u32,
    /// Number of hard macros.
    pub num_macros: u32,
    /// Target placement density (cell area / die area), `0 < d < 1`.
    pub density: f64,
    /// Die aspect ratio (width / height).
    pub aspect: f64,
    /// Placement hotspots.
    pub hotspots: Vec<Hotspot>,
    /// Fraction of net sinks drawn from the driver's locality (the rest
    /// are Pareto-tailed "global" sinks forming the long-net tail).
    pub locality: f64,
    /// Locality radius as a fraction of die width.
    pub locality_radius: f64,
    /// Mean fanout (sinks per net); sampled geometrically, capped at 6.
    pub mean_fanout: f64,
    /// Router layer-assignment targets.
    pub cuts: CutProfile,
    /// Base router jitter in DBU: how far via stacks and corners stray from
    /// their ideal locations in an uncongested region.
    pub jitter: i64,
    /// How strongly local congestion amplifies the jitter.
    pub congestion_jitter: f64,
    /// Probability that a trunk is routed as a Z (detour) rather than an L.
    pub z_shape_prob: f64,
    /// RNG seed; two builds with the same spec are identical.
    pub seed: u64,
}

impl DesignSpec {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::InvalidSpec`] on zero cells/nets, densities
    /// outside `(0, 1)`, or an inconsistent cut profile.
    pub fn validate(&self) -> Result<(), LayoutError> {
        if self.num_cells < 2 {
            return Err(LayoutError::InvalidSpec("need at least two cells".into()));
        }
        if self.num_nets == 0 {
            return Err(LayoutError::InvalidSpec("need at least one net".into()));
        }
        if !(self.density > 0.0 && self.density < 1.0) {
            return Err(LayoutError::InvalidSpec(format!(
                "density {} outside (0, 1)",
                self.density
            )));
        }
        if !(self.aspect > 0.1 && self.aspect < 10.0) {
            return Err(LayoutError::InvalidSpec(format!(
                "extreme aspect {}",
                self.aspect
            )));
        }
        self.cuts.validate(self.num_nets)?;
        Ok(())
    }
}

/// A generated, placed (but unrouted) design.
#[derive(Debug, Clone)]
pub struct PlacedDesign {
    /// The spec this design was generated from.
    pub spec: DesignSpec,
    /// Placed netlist.
    pub netlist: Netlist,
    /// Die bounds.
    pub die: Rect,
}

/// Generates and places a design from its spec.
///
/// # Errors
///
/// Returns [`LayoutError::InvalidSpec`] if the spec fails validation.
///
/// # Examples
///
/// ```
/// use sm_layout::generator::{generate, DesignSpec};
/// use sm_layout::suite::Suite;
///
/// let spec = Suite::spec_sb1_scaled(0.01);
/// let design = generate(&spec)?;
/// assert_eq!(design.netlist.num_nets() as u32, spec.num_nets);
/// # Ok::<(), sm_layout::error::LayoutError>(())
/// ```
pub fn generate(spec: &DesignSpec) -> Result<PlacedDesign, LayoutError> {
    spec.validate()?;
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let library = CellLibrary::standard();
    let mut netlist = Netlist::new(library);

    let die = size_die(spec, netlist.library());
    let macro_rects = place_macros(spec, &mut netlist, die, &mut rng);
    place_cells(spec, &mut netlist, die, &macro_rects, &mut rng);
    generate_nets(spec, &mut netlist, die, &mut rng)?;

    Ok(PlacedDesign {
        spec: spec.clone(),
        netlist,
        die,
    })
}

/// Picks die dimensions so that total cell area / die area ≈ `spec.density`.
fn size_die(spec: &DesignSpec, library: &CellLibrary) -> Rect {
    let std_ids = library.standard_kind_ids();
    let mean_area: f64 = std_ids
        .iter()
        .map(|&id| library.kind(id).area() as f64)
        .sum::<f64>()
        / std_ids.len() as f64;
    let macro_area: f64 = library
        .macro_kind_ids()
        .iter()
        .map(|&id| library.kind(id).area() as f64)
        .sum::<f64>()
        / library.macro_kind_ids().len().max(1) as f64;
    let total = mean_area * f64::from(spec.num_cells) + macro_area * f64::from(spec.num_macros);
    let die_area = total / spec.density;
    let h = (die_area / spec.aspect).sqrt();
    let w = h * spec.aspect;
    // Round height to a whole number of rows.
    let rows = ((h / ROW_HEIGHT as f64).ceil() as i64).max(4);
    Rect::with_size(w.ceil() as i64, rows * ROW_HEIGHT)
}

fn place_macros(
    spec: &DesignSpec,
    netlist: &mut Netlist,
    die: Rect,
    rng: &mut ChaCha8Rng,
) -> Vec<Rect> {
    let macro_ids = netlist.library().macro_kind_ids();
    let mut rects = Vec::new();
    if macro_ids.is_empty() {
        return rects;
    }
    for _ in 0..spec.num_macros {
        let kind = macro_ids[rng.gen_range(0..macro_ids.len())];
        let (w, h) = {
            let k = netlist.library().kind(kind);
            (k.width, k.height)
        };
        if die.width() <= w || die.height() <= h {
            continue; // die too small for this macro; skip rather than fail
        }
        // Bias macros toward the die periphery, as floorplanners do.
        let x = if rng.gen_bool(0.5) {
            rng.gen_range(0..die.width() / 4)
        } else {
            die.width() - w - rng.gen_range(0..die.width() / 4).min(die.width() - w)
        };
        let y = ((rng.gen_range(0..die.height() - h) / ROW_HEIGHT) * ROW_HEIGHT).max(0);
        let id = netlist.add_cell(kind);
        netlist.place_cell(id, Point::new(x, y));
        rects.push(Rect::new(Point::new(x, y), Point::new(x + w, y + h)));
    }
    rects
}

/// Density multiplier at a point from the hotspot field.
fn intensity(spec: &DesignSpec, die: Rect, x: i64, y: i64) -> f64 {
    let mut v = 1.0;
    for h in &spec.hotspots {
        let cx = die.lo.x as f64 + h.at.0 * die.width() as f64;
        let cy = die.lo.y as f64 + h.at.1 * die.height() as f64;
        let dx = x as f64 - cx;
        let dy = y as f64 - cy;
        let s = h.sigma * die.width() as f64;
        v += h.amplitude * (-(dx * dx + dy * dy) / (2.0 * s * s)).exp();
    }
    v
}

fn place_cells(
    spec: &DesignSpec,
    netlist: &mut Netlist,
    die: Rect,
    macro_rects: &[Rect],
    rng: &mut ChaCha8Rng,
) {
    let std_ids = netlist.library().standard_kind_ids();
    let rows = (die.height() / ROW_HEIGHT) as usize;
    // Mean free gap required to fit num_cells at the target density given
    // hotspot-modulated local gaps.
    let mean_width: f64 = std_ids
        .iter()
        .map(|&id| netlist.library().kind(id).width as f64)
        .sum::<f64>()
        / std_ids.len() as f64;
    let row_capacity_target = f64::from(spec.num_cells) / rows as f64;
    let base_gap = ((die.width() as f64 / row_capacity_target) - mean_width).max(mean_width * 0.05);

    let mut placed = 0u32;
    let mut row = 0usize;
    // Weighted kind choice: small gates common, big gates and FFs rarer.
    let weights: Vec<f64> = std_ids
        .iter()
        .map(|&id| 1.0 / (netlist.library().kind(id).width as f64).sqrt())
        .collect();
    let total_w: f64 = weights.iter().sum();
    let pick_kind = |rng: &mut ChaCha8Rng| {
        let mut t = rng.gen_range(0.0..total_w);
        for (i, w) in weights.iter().enumerate() {
            if t < *w {
                return std_ids[i];
            }
            t -= w;
        }
        std_ids[std_ids.len() - 1]
    };

    'outer: while placed < spec.num_cells {
        let y = (row % rows) as i64 * ROW_HEIGHT;
        let mut x = die.lo.x + rng.gen_range(0..base_gap.max(1.0) as i64 + 1);
        while x < die.hi.x && placed < spec.num_cells {
            let kind = pick_kind(rng);
            let w = netlist.library().kind(kind).width;
            if x + w >= die.hi.x {
                break;
            }
            let here = Point::new(x, y);
            let blocked = macro_rects.iter().any(|r| r.contains(here));
            if !blocked {
                let id = netlist.add_cell(kind);
                netlist.place_cell(id, here);
                placed += 1;
            }
            let gap = base_gap / intensity(spec, die, x, y);
            x += w + rng.gen_range(0.0..=gap.max(1.0)) as i64 + 1;
        }
        row += 1;
        if row > rows * 64 {
            break 'outer; // safety valve: die saturated below target count
        }
    }
}

/// Generates nets with local/global sink mixture over the placed cells.
fn generate_nets(
    spec: &DesignSpec,
    netlist: &mut Netlist,
    die: Rect,
    rng: &mut ChaCha8Rng,
) -> Result<(), LayoutError> {
    let n_cells = netlist.num_cells();
    if n_cells < 2 {
        return Err(LayoutError::InvalidSpec(
            "placement produced fewer than two cells".into(),
        ));
    }
    // Spatial index of cells for locality queries.
    let gcell = (die.width() / 64).max(ROW_HEIGHT);
    let grid = Grid::new(die, gcell);
    let mut buckets: Vec<Vec<CellId>> = vec![Vec::new(); grid.len()];
    for id in netlist.cell_ids().collect::<Vec<_>>() {
        let loc = netlist.pin_location(PinRef {
            cell: id,
            dir: PinDir::Output,
        });
        buckets[grid.flat_of(loc)].push(id);
    }
    let radius = (spec.locality_radius * die.width() as f64) as i64;
    let radius_cells = ((radius / gcell) as usize).max(1);

    for _ in 0..spec.num_nets {
        let driver_cell = CellId(rng.gen_range(0..n_cells as u32));
        let driver_loc = netlist.pin_location(PinRef {
            cell: driver_cell,
            dir: PinDir::Output,
        });
        // Geometric fanout with mean ≈ mean_fanout, capped at 6.
        let p = 1.0 / spec.mean_fanout.max(1.0);
        let mut fanout = 1usize;
        while fanout < 6 && rng.gen_bool(1.0 - p) {
            fanout += 1;
        }
        let mut sinks = Vec::with_capacity(fanout);
        let mut guard = 0;
        while sinks.len() < fanout && guard < fanout * 20 {
            guard += 1;
            let cand = if rng.gen_bool(spec.locality) {
                // Local sink: random cell from the neighbourhood window.
                let window: Vec<usize> = grid.window(driver_loc, radius_cells).collect();
                let b = &buckets[window[rng.gen_range(0..window.len())]];
                if b.is_empty() {
                    continue;
                }
                b[rng.gen_range(0..b.len())]
            } else {
                // Global sink: Pareto-tailed distance kernel. Real net-length
                // distributions decay as a power law — even the longest few
                // percent of nets span a modest fraction of the die, not the
                // whole of it.
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let dist = (radius as f64 * u.powf(-1.0 / 1.5)).min(die.width() as f64 * 0.9);
                let angle = rng.gen_range(0.0..std::f64::consts::TAU);
                let target = die.clamp(Point::new(
                    driver_loc.x + (dist * angle.cos()) as i64,
                    driver_loc.y + (dist * angle.sin()) as i64,
                ));
                let b = &buckets[grid.flat_of(target)];
                if b.is_empty() {
                    continue;
                }
                b[rng.gen_range(0..b.len())]
            };
            if cand == driver_cell || sinks.iter().any(|s: &PinRef| s.cell == cand) {
                continue;
            }
            sinks.push(PinRef {
                cell: cand,
                dir: PinDir::Input,
            });
        }
        if sinks.is_empty() {
            // Degenerate fallback: connect to any other cell.
            let other = CellId((driver_cell.0 + 1) % n_cells as u32);
            sinks.push(PinRef {
                cell: other,
                dir: PinDir::Input,
            });
        }
        netlist.add_net(
            PinRef {
                cell: driver_cell,
                dir: PinDir::Output,
            },
            sinks,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::hpwl;
    use crate::suite::Suite;

    fn small_spec() -> DesignSpec {
        let mut s = Suite::spec_sb1_scaled(0.005);
        s.name = "test".into();
        s
    }

    #[test]
    fn generate_is_deterministic() {
        let spec = small_spec();
        let a = generate(&spec).expect("valid spec");
        let b = generate(&spec).expect("valid spec");
        assert_eq!(a.netlist.num_cells(), b.netlist.num_cells());
        let ca = a
            .netlist
            .cell_ids()
            .map(|id| a.netlist.cell(id).origin)
            .collect::<Vec<_>>();
        let cb = b
            .netlist
            .cell_ids()
            .map(|id| b.netlist.cell(id).origin)
            .collect::<Vec<_>>();
        assert_eq!(ca, cb);
    }

    #[test]
    fn seeds_differentiate_designs() {
        let spec = small_spec();
        let mut spec2 = spec.clone();
        spec2.seed ^= 0xdead_beef;
        let a = generate(&spec).expect("valid spec");
        let b = generate(&spec2).expect("valid spec");
        let ca: Vec<_> = a
            .netlist
            .cell_ids()
            .map(|id| a.netlist.cell(id).origin)
            .collect();
        let cb: Vec<_> = b
            .netlist
            .cell_ids()
            .map(|id| b.netlist.cell(id).origin)
            .collect();
        assert_ne!(ca, cb);
    }

    #[test]
    fn cells_stay_inside_die() {
        let d = generate(&small_spec()).expect("valid spec");
        for id in d.netlist.cell_ids() {
            let c = d.netlist.cell(id);
            let k = d.netlist.library().kind(c.kind);
            assert!(c.origin.x >= d.die.lo.x);
            assert!(c.origin.x + k.width <= d.die.hi.x, "cell sticks out in x");
            assert!(c.origin.y >= d.die.lo.y && c.origin.y + k.height <= d.die.hi.y + k.height);
        }
    }

    #[test]
    fn most_nets_are_local() {
        let d = generate(&small_spec()).expect("valid spec");
        let radius = (d.spec.locality_radius * d.die.width() as f64) as i64;
        let mut local = 0usize;
        for id in d.netlist.net_ids() {
            let pts = d.netlist.net_pin_locations(id);
            if hpwl(&pts) <= 4 * radius {
                local += 1;
            }
        }
        let frac = local as f64 / d.netlist.num_nets() as f64;
        assert!(frac > 0.5, "only {frac:.2} of nets are local");
    }

    #[test]
    fn net_length_distribution_has_a_long_tail() {
        let d = generate(&small_spec()).expect("valid spec");
        let mut lens: Vec<i64> = d
            .netlist
            .net_ids()
            .map(|id| hpwl(&d.netlist.net_pin_locations(id)))
            .collect();
        lens.sort_unstable();
        let median = lens[lens.len() / 2];
        let p99 = lens[lens.len() * 99 / 100];
        assert!(
            p99 > 2 * median.max(1),
            "no long-net tail: median {median}, p99 {p99}"
        );
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut s = small_spec();
        s.density = 1.5;
        assert!(generate(&s).is_err());
        let mut s = small_spec();
        s.cuts.at_l8 = s.cuts.at_l4 + 1;
        assert!(s.validate().is_err());
        let mut s = small_spec();
        s.cuts.at_l4 = s.num_nets;
        assert!(s.validate().is_err());
        let mut s = small_spec();
        s.num_cells = 1;
        assert!(s.validate().is_err());
    }

    #[test]
    fn hotspots_create_density_contrast() {
        let mut spec = small_spec();
        spec.hotspots = vec![Hotspot {
            at: (0.25, 0.5),
            amplitude: 6.0,
            sigma: 0.08,
        }];
        let d = generate(&spec).expect("valid spec");
        let die = d.die;
        use crate::congestion::DensityMap;
        let pins = d.netlist.cell_ids().map(|id| {
            d.netlist.pin_location(crate::netlist::PinRef {
                cell: id,
                dir: PinDir::Output,
            })
        });
        let map = DensityMap::from_points(die, die.width() / 16, pins);
        let hot = map.density(
            Point::new(die.lo.x + die.width() / 4, die.lo.y + die.height() / 2),
            1,
        );
        let cold = map.density(
            Point::new(
                die.lo.x + 15 * die.width() / 16,
                die.lo.y + die.height() / 8,
            ),
            1,
        );
        assert!(
            hot > cold,
            "hotspot density {hot:.2} not above background {cold:.2}"
        );
    }
}
