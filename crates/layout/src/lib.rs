//! # sm-layout — synthetic VLSI layout substrate for split-manufacturing research
//!
//! This crate provides everything below the machine-learning attack in the
//! reproduction of *"Analysis of Security of Split Manufacturing Using
//! Machine Learning"* (Zeng, Zhang, Davoodi): a 9-metal-layer process
//! technology, a standard-cell library, a seeded synthetic benchmark
//! generator modelled on the ISPD-2011 `superblue` suite, a row-based
//! placer, a congestion-driven multi-layer global router, and the
//! split-view extraction that turns a routed design into an attack
//! challenge (v-pins plus hidden ground truth).
//!
//! ## Quick start
//!
//! ```
//! use sm_layout::suite::Suite;
//! use sm_layout::tech::SplitLayer;
//!
//! // Generate a small version of the five-design suite and cut the first
//! // benchmark at split layer 8 (between metals M8 and M9).
//! let suite = Suite::ispd2011_like(0.01)?;
//! let view = suite.benchmarks()[0].split(SplitLayer::new(8)?);
//! println!("{} v-pins on {}", view.num_vpins(), view.name);
//! for vp in view.vpins().iter().take(3) {
//!     println!("v-pin at {} connects pins near {}", vp.loc, vp.pin_loc);
//! }
//! # Ok::<(), sm_layout::error::LayoutError>(())
//! ```
//!
//! The attacker-facing surface is [`split::SplitView`]: locations, route
//! fragments, cell areas and congestion of every v-pin — with the true
//! matching stored separately for evaluation only.

pub mod cells;
pub mod congestion;
pub mod error;
pub mod generator;
pub mod geom;
pub mod io;
pub mod netlist;
pub mod route;
pub mod split;
pub mod steiner;
pub mod suite;
pub mod tech;

pub use error::LayoutError;
pub use split::{SplitView, VPin};
pub use suite::{Benchmark, Suite};
pub use tech::SplitLayer;
