//! Planar geometry primitives used throughout the layout substrate.
//!
//! All coordinates are integer database units (DBU). A DBU corresponds to
//! 1 nm in the synthetic technology defined by [`crate::tech::Technology`],
//! but nothing in this module depends on that interpretation.

use serde::{Deserialize, Serialize};

/// A point on the layout plane, in database units.
///
/// # Examples
///
/// ```
/// use sm_layout::geom::Point;
///
/// let a = Point::new(0, 0);
/// let b = Point::new(3, 4);
/// assert_eq!(a.manhattan(b), 7);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Point {
    /// Horizontal coordinate in DBU.
    pub x: i64,
    /// Vertical coordinate in DBU.
    pub y: i64,
}

impl Point {
    /// Creates a point from its coordinates.
    pub const fn new(x: i64, y: i64) -> Self {
        Self { x, y }
    }

    /// Manhattan (L1) distance to `other`.
    ///
    /// This is the metric used both by the router (wirelength lower bound)
    /// and by the proximity attack.
    pub fn manhattan(self, other: Point) -> i64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Component-wise minimum.
    pub fn min(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    pub fn max(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i64, i64)> for Point {
    fn from((x, y): (i64, i64)) -> Self {
        Point::new(x, y)
    }
}

/// An axis-aligned rectangle, closed on the low edge and open on the high
/// edge (`lo.x <= x < hi.x`).
///
/// # Examples
///
/// ```
/// use sm_layout::geom::{Point, Rect};
///
/// let r = Rect::new(Point::new(0, 0), Point::new(10, 5));
/// assert_eq!(r.width(), 10);
/// assert_eq!(r.height(), 5);
/// assert_eq!(r.area(), 50);
/// assert!(r.contains(Point::new(9, 4)));
/// assert!(!r.contains(Point::new(10, 4)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner (inclusive).
    pub lo: Point,
    /// Upper-right corner (exclusive).
    pub hi: Point,
}

impl Rect {
    /// Creates a rectangle from two corners.
    ///
    /// # Panics
    ///
    /// Panics if `lo` is not component-wise `<=` `hi`.
    pub fn new(lo: Point, hi: Point) -> Self {
        assert!(lo.x <= hi.x && lo.y <= hi.y, "malformed rect {lo} .. {hi}");
        Self { lo, hi }
    }

    /// Creates a rectangle spanning `(0, 0) .. (w, h)`.
    pub fn with_size(w: i64, h: i64) -> Self {
        Self::new(Point::new(0, 0), Point::new(w, h))
    }

    /// Width along x.
    pub fn width(&self) -> i64 {
        self.hi.x - self.lo.x
    }

    /// Height along y.
    pub fn height(&self) -> i64 {
        self.hi.y - self.lo.y
    }

    /// Area in DBU².
    pub fn area(&self) -> i64 {
        self.width() * self.height()
    }

    /// Center point (rounded down).
    pub fn center(&self) -> Point {
        Point::new((self.lo.x + self.hi.x) / 2, (self.lo.y + self.hi.y) / 2)
    }

    /// Whether `p` lies inside (low-inclusive, high-exclusive).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.lo.x && p.x < self.hi.x && p.y >= self.lo.y && p.y < self.hi.y
    }

    /// Clamps `p` into the rectangle (high edge clamped to `hi - 1`).
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.lo.x, self.hi.x - 1),
            p.y.clamp(self.lo.y, self.hi.y - 1),
        )
    }

    /// The smallest rectangle containing both `self` and `p`.
    pub fn expand_to(&self, p: Point) -> Rect {
        Rect {
            lo: self.lo.min(p),
            hi: self.hi.max(Point::new(p.x + 1, p.y + 1)),
        }
    }
}

/// Half-perimeter wirelength of a set of points: the classic lower bound on
/// the length of any rectilinear tree connecting them.
///
/// Returns 0 for fewer than two points.
///
/// # Examples
///
/// ```
/// use sm_layout::geom::{hpwl, Point};
///
/// let pts = [Point::new(0, 0), Point::new(4, 0), Point::new(2, 3)];
/// assert_eq!(hpwl(&pts), 4 + 3);
/// ```
pub fn hpwl(points: &[Point]) -> i64 {
    if points.len() < 2 {
        return 0;
    }
    let mut lo = points[0];
    let mut hi = points[0];
    for &p in &points[1..] {
        lo = lo.min(p);
        hi = hi.max(p);
    }
    (hi.x - lo.x) + (hi.y - lo.y)
}

/// A uniform grid over a rectangle, used for congestion maps and spatial
/// indexing. Cells are square with side `cell` DBU; the last row/column may
/// be partial.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grid {
    bounds: Rect,
    cell: i64,
    nx: usize,
    ny: usize,
}

impl Grid {
    /// Builds a grid over `bounds` with square cells of side `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell <= 0` or `bounds` is degenerate.
    pub fn new(bounds: Rect, cell: i64) -> Self {
        assert!(cell > 0, "grid cell must be positive");
        assert!(
            bounds.width() > 0 && bounds.height() > 0,
            "degenerate grid bounds"
        );
        let nx = ((bounds.width() + cell - 1) / cell) as usize;
        let ny = ((bounds.height() + cell - 1) / cell) as usize;
        Self {
            bounds,
            cell,
            nx,
            ny,
        }
    }

    /// Grid extent in cells along x.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid extent in cells along y.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// Whether the grid has no cells (never true for a validly constructed grid).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Side length of a cell in DBU.
    pub fn cell_size(&self) -> i64 {
        self.cell
    }

    /// The rectangle this grid covers.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Cell indices containing `p`, clamped into range.
    pub fn locate(&self, p: Point) -> (usize, usize) {
        let p = self.bounds.clamp(p);
        let ix = ((p.x - self.bounds.lo.x) / self.cell) as usize;
        let iy = ((p.y - self.bounds.lo.y) / self.cell) as usize;
        (ix.min(self.nx - 1), iy.min(self.ny - 1))
    }

    /// Flat index of cell `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn flat(&self, ix: usize, iy: usize) -> usize {
        assert!(ix < self.nx && iy < self.ny, "grid index out of range");
        iy * self.nx + ix
    }

    /// Flat index of the cell containing `p`.
    pub fn flat_of(&self, p: Point) -> usize {
        let (ix, iy) = self.locate(p);
        self.flat(ix, iy)
    }

    /// Iterates over flat indices in the `(2r+1)×(2r+1)` window of cells
    /// centred on the cell containing `p`, clipped to the grid.
    pub fn window(&self, p: Point, r: usize) -> impl Iterator<Item = usize> + '_ {
        let (cx, cy) = self.locate(p);
        let x0 = cx.saturating_sub(r);
        let y0 = cy.saturating_sub(r);
        let x1 = (cx + r).min(self.nx - 1);
        let y1 = (cy + r).min(self.ny - 1);
        (y0..=y1).flat_map(move |iy| (x0..=x1).map(move |ix| iy * self.nx + ix))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_is_symmetric_and_zero_on_self() {
        let a = Point::new(-3, 7);
        let b = Point::new(10, -2);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(a), 0);
        assert_eq!(a.manhattan(b), 13 + 9);
    }

    #[test]
    fn rect_basicness() {
        let r = Rect::with_size(100, 40);
        assert_eq!(r.area(), 4000);
        assert_eq!(r.center(), Point::new(50, 20));
        assert!(r.contains(Point::new(0, 0)));
        assert!(!r.contains(Point::new(100, 0)));
        assert_eq!(r.clamp(Point::new(500, -3)), Point::new(99, 0));
    }

    #[test]
    #[should_panic(expected = "malformed rect")]
    fn rect_rejects_inverted_corners() {
        let _ = Rect::new(Point::new(5, 5), Point::new(0, 0));
    }

    #[test]
    fn rect_expand_to_grows_minimally() {
        let r = Rect::with_size(10, 10).expand_to(Point::new(20, 3));
        assert_eq!(r.hi, Point::new(21, 10));
        assert_eq!(r.lo, Point::new(0, 0));
    }

    #[test]
    fn hpwl_of_degenerate_sets() {
        assert_eq!(hpwl(&[]), 0);
        assert_eq!(hpwl(&[Point::new(9, 9)]), 0);
        assert_eq!(hpwl(&[Point::new(1, 1), Point::new(1, 1)]), 0);
    }

    #[test]
    fn grid_locates_and_windows() {
        let g = Grid::new(Rect::with_size(100, 100), 10);
        assert_eq!(g.nx(), 10);
        assert_eq!(g.ny(), 10);
        assert_eq!(g.locate(Point::new(0, 0)), (0, 0));
        assert_eq!(g.locate(Point::new(99, 99)), (9, 9));
        // Out-of-bounds points clamp instead of panicking.
        assert_eq!(g.locate(Point::new(1000, 1000)), (9, 9));
        let w: Vec<usize> = g.window(Point::new(5, 5), 1).collect();
        assert_eq!(w.len(), 4); // corner cell: 2x2 window after clipping
        let w: Vec<usize> = g.window(Point::new(55, 55), 1).collect();
        assert_eq!(w.len(), 9);
    }

    #[test]
    fn grid_partial_last_cells() {
        let g = Grid::new(Rect::with_size(95, 21), 10);
        assert_eq!(g.nx(), 10);
        assert_eq!(g.ny(), 3);
        assert_eq!(g.locate(Point::new(94, 20)), (9, 2));
    }
}
