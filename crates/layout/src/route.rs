//! Congestion-driven multi-layer global routing.
//!
//! The router implements the behaviour the paper identifies as decisive for
//! split-manufacturing security (Section II-B): a *minimum* number of layers
//! is used per net, long nets are promoted to the upper (wider, sparser)
//! layers, and congestion displaces wires from their ideal positions.
//!
//! ## Route model
//!
//! Every net is routed as two *escape stacks* plus a *trunk* on an adjacent
//! layer pair `(Mₐ, Mₐ₊₁)`:
//!
//! ```text
//!             trunk on Mₐ / Mₐ₊₁  (L- or Z-shape)
//!        ┌────────────corner────────────┐
//!   stack A (vias M1..Mₐ)          stack B (vias M1..Mₐ₊₁)
//!        │                              │
//!    side-A pins                    side-B pins
//! ```
//!
//! Cutting the layout at via layer `V_L` breaks exactly the nets whose
//! trunk pair lies above `M_L` (i.e. `a >= L`), producing two v-pins per cut
//! net — at the stack locations when `L < a`, or at the trunk corner/jog
//! vias when `L = a`. This reproduces the paper's observations that v-pin
//! counts grow several-fold toward lower split layers and that split layer 8
//! pairs are collinear along the top layer's routing direction.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::congestion::{DemandMap, DensityMap};
use crate::generator::PlacedDesign;
use crate::geom::{hpwl, Point, Rect};
use crate::netlist::{NetId, Netlist, PinRef};
use crate::tech::{Direction, SplitLayer, Technology};

/// Which side of the trunk a v-pin's below-split fragments attach to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// The driver-side endpoint.
    A,
    /// The sink-cluster endpoint.
    B,
}

/// Trunk shape of a routed net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrunkShape {
    /// Single corner: run on `Mₐ` from A, turn once onto `Mₐ₊₁` to B.
    LShape,
    /// Detour: run on `Mₐ`, jog onto `Mₐ₊₁` at an intermediate coordinate,
    /// come back down to `Mₐ` and finish. Both trunk vias sit at the jog
    /// coordinate. `mid` is that coordinate along `Mₐ₊₁`'s direction axis.
    ZShape {
        /// The jog coordinate along `Mₐ`'s running axis.
        mid: i64,
    },
}

/// The pins attached below the split on one trunk side.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SideInfo {
    /// Pin references on this side.
    pub pins: Vec<PinRef>,
    /// Whether the net's driver is on this side.
    pub has_driver: bool,
}

/// One via crossing of a net at a particular via layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Crossing {
    /// Location of the via on the split plane.
    pub loc: Point,
    /// Which endpoint's below-split fragments this via attaches to.
    pub side: Side,
    /// Extra below-split trunk wirelength attached to this via (the part of
    /// the `Mₐ` run that lies below the split when the split is at `Vₐ`).
    pub below_trunk_len: i64,
}

/// A fully routed net.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutedNet {
    /// The underlying net.
    pub net: NetId,
    /// Lower metal layer of the trunk pair (`a` in `(Mₐ, Mₐ₊₁)`); the net
    /// uses metals `1..=a+1`.
    pub trunk_low: u8,
    /// Trunk shape.
    pub shape: TrunkShape,
    /// Via-stack location above the driver-side pins.
    pub a_stack: Point,
    /// Via-stack location above the sink-side pins.
    pub b_stack: Point,
    /// Driver-side pins.
    pub side_a: SideInfo,
    /// Sink-side pins.
    pub side_b: SideInfo,
}

impl RoutedNet {
    /// Highest metal layer the net uses.
    pub fn top_metal(&self) -> u8 {
        self.trunk_low + 1
    }

    /// Whether cutting at `split` breaks this net.
    pub fn is_cut_by(&self, split: SplitLayer) -> bool {
        self.trunk_low >= split.via_index()
    }

    /// The two via crossings of this net at `split`, or `None` if the net is
    /// entirely below the split. `tech` supplies layer directions.
    pub fn crossings(&self, split: SplitLayer, tech: &Technology) -> Option<[Crossing; 2]> {
        if !self.is_cut_by(split) {
            return None;
        }
        let v = split.via_index();
        if v < self.trunk_low {
            // Both crossings are inside the escape stacks.
            return Some([
                Crossing {
                    loc: self.a_stack,
                    side: Side::A,
                    below_trunk_len: 0,
                },
                Crossing {
                    loc: self.b_stack,
                    side: Side::B,
                    below_trunk_len: 0,
                },
            ]);
        }
        // v == trunk_low: the crossings are the trunk vias.
        let dir_low = tech.metal(self.trunk_low).direction;
        match self.shape {
            TrunkShape::LShape => {
                // Run on M_a from a_stack covers the low layer's axis; the
                // corner carries b_stack's coordinate on that axis and
                // a_stack's on the other.
                let corner = match dir_low {
                    Direction::Horizontal => Point::new(self.b_stack.x, self.a_stack.y),
                    Direction::Vertical => Point::new(self.a_stack.x, self.b_stack.y),
                };
                let below_a = self.a_stack.manhattan(corner);
                Some([
                    Crossing {
                        loc: corner,
                        side: Side::A,
                        below_trunk_len: below_a,
                    },
                    Crossing {
                        loc: self.b_stack,
                        side: Side::B,
                        below_trunk_len: 0,
                    },
                ])
            }
            TrunkShape::ZShape { mid } => {
                // Two jog vias at the `mid` coordinate along M_a's running
                // axis: x for a horizontal low layer, y for a vertical one.
                let (j1, j2) = match dir_low {
                    Direction::Horizontal => (
                        Point::new(mid, self.a_stack.y),
                        Point::new(mid, self.b_stack.y),
                    ),
                    Direction::Vertical => (
                        Point::new(self.a_stack.x, mid),
                        Point::new(self.b_stack.x, mid),
                    ),
                };
                let below_a = self.a_stack.manhattan(j1);
                let below_b = self.b_stack.manhattan(j2);
                Some([
                    Crossing {
                        loc: j1,
                        side: Side::A,
                        below_trunk_len: below_a,
                    },
                    Crossing {
                        loc: j2,
                        side: Side::B,
                        below_trunk_len: below_b,
                    },
                ])
            }
        }
    }

    /// The side-info for a given side.
    pub fn side(&self, side: Side) -> &SideInfo {
        match side {
            Side::A => &self.side_a,
            Side::B => &self.side_b,
        }
    }

    /// Stack location of a given side.
    pub fn stack(&self, side: Side) -> Point {
        match side {
            Side::A => self.a_stack,
            Side::B => self.b_stack,
        }
    }
}

/// A placed-and-routed design: the input to split-view extraction.
#[derive(Debug, Clone)]
pub struct RoutedDesign {
    /// Benchmark name.
    pub name: String,
    /// The netlist with placement.
    pub netlist: Netlist,
    /// Die bounds.
    pub die: Rect,
    /// Process technology.
    pub tech: Technology,
    /// One routed record per net (index = net id).
    pub routed: Vec<RoutedNet>,
    /// Placement pin-density map (used for the `PC` feature).
    pub pin_density: DensityMap,
}

impl RoutedDesign {
    /// Number of nets cut at `split`.
    pub fn cut_count(&self, split: SplitLayer) -> usize {
        self.routed.iter().filter(|r| r.is_cut_by(split)).count()
    }
}

/// Routes a placed design.
///
/// Layer assignment is rank-based: nets are ordered by congestion-jittered
/// HPWL and the longest `cuts.at_l8` nets get trunk pair `(M8, M9)`, the
/// next band pairs `(M6, M7)`/`(M7, M8)`, and so on per the spec's
/// [`crate::generator::CutProfile`]. Stack and corner positions are
/// displaced by congestion-scaled jitter accumulated in a [`DemandMap`].
///
/// # Examples
///
/// ```
/// use sm_layout::generator::generate;
/// use sm_layout::route::route;
/// use sm_layout::suite::Suite;
/// use sm_layout::tech::SplitLayer;
///
/// let spec = Suite::spec_sb1_scaled(0.01);
/// let routed = route(generate(&spec)?);
/// let l8 = SplitLayer::new(8)?;
/// assert!(routed.cut_count(l8) > 0);
/// # Ok::<(), sm_layout::error::LayoutError>(())
/// ```
pub fn route(placed: PlacedDesign) -> RoutedDesign {
    let PlacedDesign { spec, netlist, die } = placed;
    let tech = Technology::ispd9();
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed.wrapping_mul(0x9e37_79b9).wrapping_add(7));

    // --- Layer assignment by jittered length rank -------------------------
    let n_nets = netlist.num_nets();
    let mut keyed: Vec<(f64, NetId)> = netlist
        .net_ids()
        .map(|id| {
            let len = hpwl(&netlist.net_pin_locations(id)).max(1) as f64;
            let jitter: f64 = rng.gen_range(-0.35..0.35f64);
            (len * jitter.exp(), id)
        })
        .collect();
    keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

    let c = &spec.cuts;
    let mut trunk_low_of = vec![0u8; n_nets];
    for (rank, &(_, id)) in keyed.iter().enumerate() {
        let r = rank as u32;
        let low = if r < c.at_l8 {
            8
        } else if r < c.at_l6 {
            // Routers take the lowest feasible layer, so within a band the
            // lower pair dominates.
            if rng.gen_bool(0.65) {
                6
            } else {
                7
            }
        } else if r < c.at_l4 {
            if rng.gen_bool(0.65) {
                4
            } else {
                5
            }
        } else {
            // Below-split nets: mostly the bottom pairs, congestion pushes a
            // few up to M3.
            *[1u8, 1, 2, 2, 2, 3]
                .get(rng.gen_range(0..6usize))
                .expect("non-empty")
        };
        trunk_low_of[id.0 as usize] = low;
    }

    // --- Demand-aware trunk construction ----------------------------------
    let caps: Vec<u32> = (1..=tech.num_metal_layers())
        .map(|m| tech.gcell_capacity(m))
        .collect();
    let mut demand = DemandMap::new(die, tech.gcell_size(), tech.num_metal_layers(), caps);

    // Route in descending length order so long nets set the congestion
    // context the short nets detour around.
    let mut routed: Vec<Option<RoutedNet>> = vec![None; n_nets];
    for &(_, id) in &keyed {
        let rn = route_net(
            &netlist,
            id,
            trunk_low_of[id.0 as usize],
            &spec,
            die,
            &tech,
            &mut demand,
            &mut rng,
        );
        routed[id.0 as usize] = Some(rn);
    }
    let routed: Vec<RoutedNet> = routed
        .into_iter()
        .map(|r| r.expect("every net routed"))
        .collect();

    // --- Placement pin density (PC feature source) ------------------------
    let mut pin_density = DensityMap::new(die, tech.gcell_size());
    for id in netlist.net_ids() {
        for loc in netlist.net_pin_locations(id) {
            pin_density.add(loc);
        }
    }

    RoutedDesign {
        name: spec.name.clone(),
        netlist,
        die,
        tech,
        routed,
        pin_density,
    }
}

#[allow(clippy::too_many_arguments)]
fn route_net(
    netlist: &Netlist,
    id: NetId,
    trunk_low: u8,
    spec: &crate::generator::DesignSpec,
    die: Rect,
    tech: &Technology,
    demand: &mut DemandMap,
    rng: &mut ChaCha8Rng,
) -> RoutedNet {
    let net = netlist.net(id);
    let driver = net.driver;
    let driver_loc = netlist.pin_location(driver);

    // Partition sinks: those close to the driver stay on side A (routed in
    // the local below-trunk tree); the rest form side B.
    let pts: Vec<Point> = net.pins().map(|p| netlist.pin_location(p)).collect();
    let span = hpwl(&pts).max(1);
    let near = span / 4;
    let mut side_a = SideInfo {
        pins: vec![driver],
        has_driver: true,
    };
    let mut side_b = SideInfo {
        pins: Vec::new(),
        has_driver: false,
    };
    for &s in &net.sinks {
        if netlist.pin_location(s).manhattan(driver_loc) <= near {
            side_a.pins.push(s);
        } else {
            side_b.pins.push(s);
        }
    }
    if side_b.pins.is_empty() {
        // Keep the trunk meaningful: move the farthest sink to side B.
        let far = side_a.pins[1..]
            .iter()
            .copied()
            .max_by_key(|p| netlist.pin_location(*p).manhattan(driver_loc));
        if let Some(far) = far {
            side_a.pins.retain(|p| *p != far);
            side_b.pins.push(far);
        } else {
            // Single-pin side-A nets cannot happen (netlist validates >= 1
            // sink), but stay safe.
            side_b.pins.push(driver);
        }
    }

    let centroid = |pins: &[PinRef]| -> Point {
        let mut sx = 0i64;
        let mut sy = 0i64;
        for p in pins {
            let l = netlist.pin_location(*p);
            sx += l.x;
            sy += l.y;
        }
        Point::new(sx / pins.len() as i64, sy / pins.len() as i64)
    };

    // Congestion-scaled jitter displaces the escape stacks from the pin
    // centroids, like a real router hunting for free tracks.
    let jittered = |p: Point, rng: &mut ChaCha8Rng| -> Point {
        let util = demand.peak_utilisation(p);
        let sigma = spec.jitter as f64 * (1.0 + spec.congestion_jitter * util);
        let dx = sample_gauss(rng) * sigma;
        let dy = sample_gauss(rng) * sigma;
        die.clamp(Point::new(p.x + dx as i64, p.y + dy as i64))
    };

    // Trunk vias sit at track intersections: x snaps to the vertical trunk
    // layer's pitch, y to the horizontal one's. Distinct nets can therefore
    // share a track — the effect the paper's DiffVpinY limit exploits at
    // the top layer.
    let dir_low = tech.metal(trunk_low).direction;
    let (h_layer, v_layer) = match dir_low {
        Direction::Horizontal => (trunk_low, trunk_low + 1),
        Direction::Vertical => (trunk_low + 1, trunk_low),
    };
    let snap = |c: i64, pitch: i64| -> i64 { ((c + pitch / 2) / pitch) * pitch };
    // The wide top layers route in coarse track bundles over channels, so
    // distinct nets share tracks much more often there — which is exactly
    // what keeps the top split layer's same-track candidate pool non-trivial.
    let bundle = |m: u8| -> i64 {
        if m >= 7 {
            3 * tech.metal(m).pitch
        } else {
            tech.metal(m).pitch
        }
    };
    let on_track = |p: Point| -> Point {
        die.clamp(Point::new(
            snap(p.x, bundle(v_layer)),
            snap(p.y, bundle(h_layer)),
        ))
    };
    let a_stack = on_track(jittered(centroid(&side_a.pins), rng));
    let b_stack = on_track(jittered(centroid(&side_b.pins), rng));

    // Shape choice: congestion at the would-be corner raises the detour
    // probability.
    let corner = match dir_low {
        Direction::Horizontal => Point::new(b_stack.x, a_stack.y),
        Direction::Vertical => Point::new(a_stack.x, b_stack.y),
    };
    let corner_util = demand.peak_utilisation(corner);
    let z_prob = (spec.z_shape_prob * (1.0 + corner_util)).min(0.9);
    let shape = if rng.gen_bool(z_prob) {
        // Jog somewhere strictly between the endpoints on M_a's axis,
        // snapped onto a track of the jog layer (M_{a+1}).
        let (lo, hi) = match dir_low {
            Direction::Horizontal => (a_stack.x.min(b_stack.x), a_stack.x.max(b_stack.x)),
            Direction::Vertical => (a_stack.y.min(b_stack.y), a_stack.y.max(b_stack.y)),
        };
        let jog_pitch = tech.metal(trunk_low + 1).pitch;
        let mid = snap(rng.gen_range(lo..=hi), jog_pitch);
        if mid > lo && mid < hi {
            TrunkShape::ZShape { mid }
        } else {
            TrunkShape::LShape
        }
    } else {
        TrunkShape::LShape
    };

    // Record demand along the trunk.
    match shape {
        TrunkShape::LShape => {
            demand.add_segment(trunk_low, a_stack, corner);
            demand.add_segment(trunk_low + 1, corner, b_stack);
        }
        TrunkShape::ZShape { mid } => {
            let (j1, j2) = match dir_low {
                Direction::Horizontal => (Point::new(mid, a_stack.y), Point::new(mid, b_stack.y)),
                Direction::Vertical => (Point::new(a_stack.x, mid), Point::new(b_stack.x, mid)),
            };
            demand.add_segment(trunk_low, a_stack, j1);
            demand.add_segment(trunk_low + 1, j1, j2);
            demand.add_segment(trunk_low, j2, b_stack);
        }
    }

    RoutedNet {
        net: id,
        trunk_low,
        shape,
        a_stack,
        b_stack,
        side_a,
        side_b,
    }
}

/// Standard-normal sample via Box–Muller (avoids a rand_distr dependency).
pub(crate) fn sample_gauss(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use crate::suite::Suite;

    fn routed_small() -> RoutedDesign {
        let spec = Suite::spec_sb1_scaled(0.005);
        route(generate(&spec).expect("valid spec"))
    }

    #[test]
    fn cut_counts_are_monotone_and_near_targets() {
        let d = routed_small();
        let spec = Suite::spec_sb1_scaled(0.005);
        let l4 = d.cut_count(SplitLayer::new(4).expect("valid"));
        let l6 = d.cut_count(SplitLayer::new(6).expect("valid"));
        let l8 = d.cut_count(SplitLayer::new(8).expect("valid"));
        assert!(l4 >= l6 && l6 >= l8, "cuts must shrink with height");
        assert_eq!(l8 as u32, spec.cuts.at_l8);
        assert_eq!(l6 as u32, spec.cuts.at_l6);
        assert_eq!(l4 as u32, spec.cuts.at_l4);
    }

    #[test]
    fn split8_crossings_are_collinear_along_m9() {
        // M9 is horizontal, so matching v-pins at split 8 share a y.
        let d = routed_small();
        let split = SplitLayer::new(8).expect("valid");
        let mut seen = 0;
        for rn in &d.routed {
            if let Some([c1, c2]) = rn.crossings(split, &d.tech) {
                assert_eq!(c1.loc.y, c2.loc.y, "split-8 pair must share y");
                seen += 1;
            }
        }
        assert!(seen > 0);
    }

    #[test]
    fn stack_crossings_used_below_trunk() {
        let d = routed_small();
        let split = SplitLayer::new(4).expect("valid");
        for rn in &d.routed {
            if rn.trunk_low > 4 {
                let [c1, c2] = rn.crossings(split, &d.tech).expect("cut");
                assert_eq!(c1.loc, rn.a_stack);
                assert_eq!(c2.loc, rn.b_stack);
                assert_eq!(c1.below_trunk_len, 0);
            }
        }
    }

    #[test]
    fn uncut_nets_have_no_crossings() {
        let d = routed_small();
        let split = SplitLayer::new(8).expect("valid");
        for rn in &d.routed {
            if rn.trunk_low < 8 {
                assert!(rn.crossings(split, &d.tech).is_none());
            }
        }
    }

    #[test]
    fn sides_partition_net_pins() {
        let d = routed_small();
        for rn in &d.routed {
            let net = d.netlist.net(rn.net);
            assert_eq!(rn.side_a.pins.len() + rn.side_b.pins.len(), net.degree());
            assert!(rn.side_a.has_driver);
            assert!(!rn.side_b.has_driver || rn.side_b.pins.len() == 1);
            assert!(!rn.side_b.pins.is_empty(), "side B never empty");
        }
    }

    #[test]
    fn long_nets_route_higher() {
        let d = routed_small();
        let mut hi = Vec::new();
        let mut lo = Vec::new();
        for rn in &d.routed {
            let len = hpwl(&d.netlist.net_pin_locations(rn.net));
            if rn.trunk_low >= 8 {
                hi.push(len);
            } else if rn.trunk_low <= 2 {
                lo.push(len);
            }
        }
        let mean = |v: &[i64]| v.iter().sum::<i64>() as f64 / v.len().max(1) as f64;
        assert!(
            mean(&hi) > 2.0 * mean(&lo),
            "top-layer nets should be much longer"
        );
    }

    #[test]
    fn z_shape_mid_lies_between_endpoints() {
        let d = routed_small();
        for rn in &d.routed {
            if let TrunkShape::ZShape { mid } = rn.shape {
                let dir = d.tech.metal(rn.trunk_low).direction;
                let (lo, hi) = match dir {
                    Direction::Horizontal => (
                        rn.a_stack.x.min(rn.b_stack.x),
                        rn.a_stack.x.max(rn.b_stack.x),
                    ),
                    Direction::Vertical => (
                        rn.a_stack.y.min(rn.b_stack.y),
                        rn.a_stack.y.max(rn.b_stack.y),
                    ),
                };
                assert!(mid > lo && mid < hi);
            }
        }
    }

    #[test]
    fn routing_is_deterministic() {
        let spec = Suite::spec_sb1_scaled(0.005);
        let a = route(generate(&spec).expect("valid"));
        let b = route(generate(&spec).expect("valid"));
        assert_eq!(a.routed, b.routed);
    }
}
