//! The benchmark suite: five "superblue-like" synthetic designs.
//!
//! The paper evaluates on `superblue{1,5,10,12,18}` from the ISPD-2011
//! routability-driven placement contest. Those layouts are proprietary; the
//! specs here are seeded synthetic stand-ins whose v-pin populations are
//! scaled to 1/20 of the paper's (Table I column `#v-pin`) and whose
//! congestion/locality profiles are differentiated the way the paper
//! describes the originals (e.g. `superblue12` is the most congested with
//! the largest candidate lists; `superblue10` has an atypical v-pin
//! distribution with a much higher proximity-attack success rate).

use crate::error::LayoutError;
use crate::generator::{generate, CutProfile, DesignSpec, Hotspot};
use crate::route::{route, RoutedDesign};
use crate::split::SplitView;
use crate::tech::SplitLayer;

/// Relative size versus the paper's layouts that [`Suite::ispd2011_like`]
/// uses by default: v-pin counts are 1/20 of Table I.
pub const DEFAULT_SCALE: f64 = 1.0;

/// A named, generated benchmark.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// The routed design.
    pub design: RoutedDesign,
}

impl Benchmark {
    /// Short name (`sb1`, `sb5`, ...).
    pub fn name(&self) -> &str {
        &self.design.name
    }

    /// Cuts this benchmark at `split`.
    pub fn split(&self, split: SplitLayer) -> SplitView {
        SplitView::cut(&self.design, split)
    }
}

/// The five-design suite used throughout the evaluation.
#[derive(Debug, Clone)]
pub struct Suite {
    benchmarks: Vec<Benchmark>,
}

impl Suite {
    /// Builds the full five-design suite at `scale` (1.0 = default size,
    /// i.e. 1/20 of the paper's layouts; smaller values shrink every count
    /// proportionally for quick tests).
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::InvalidSpec`] if `scale` shrinks a spec below
    /// viability.
    ///
    /// # Examples
    ///
    /// ```
    /// use sm_layout::suite::Suite;
    ///
    /// let suite = Suite::ispd2011_like(0.01)?;
    /// assert_eq!(suite.len(), 5);
    /// assert_eq!(suite.benchmarks()[0].name(), "sb1");
    /// # Ok::<(), sm_layout::error::LayoutError>(())
    /// ```
    pub fn ispd2011_like(scale: f64) -> Result<Self, LayoutError> {
        let specs = Self::specs_scaled(scale);
        let mut benchmarks = Vec::with_capacity(specs.len());
        for spec in specs {
            let placed = generate(&spec)?;
            benchmarks.push(Benchmark {
                design: route(placed),
            });
        }
        Ok(Self { benchmarks })
    }

    /// The five specs at the given scale.
    pub fn specs_scaled(scale: f64) -> Vec<DesignSpec> {
        vec![
            Self::spec_sb1_scaled(scale),
            Self::spec_sb5_scaled(scale),
            Self::spec_sb10_scaled(scale),
            Self::spec_sb12_scaled(scale),
            Self::spec_sb18_scaled(scale),
        ]
    }

    /// Number of benchmarks.
    pub fn len(&self) -> usize {
        self.benchmarks.len()
    }

    /// Whether the suite is empty.
    pub fn is_empty(&self) -> bool {
        self.benchmarks.is_empty()
    }

    /// The benchmarks in suite order.
    pub fn benchmarks(&self) -> &[Benchmark] {
        &self.benchmarks
    }

    /// Splits every benchmark at `split`.
    pub fn split_all(&self, split: SplitLayer) -> Vec<SplitView> {
        self.benchmarks.iter().map(|b| b.split(split)).collect()
    }

    fn scaled(scale: f64, base: DesignSpec) -> DesignSpec {
        let s = |x: u32| ((f64::from(x) * scale).round() as u32).max(1);
        DesignSpec {
            num_cells: s(base.num_cells).max(16),
            num_nets: s(base.num_nets).max(24),
            num_macros: ((f64::from(base.num_macros) * scale).round() as u32),
            cuts: CutProfile {
                at_l4: s(base.cuts.at_l4).max(3),
                at_l6: s(base.cuts.at_l6).max(2),
                at_l8: s(base.cuts.at_l8).max(1),
            },
            ..base
        }
    }

    /// `superblue1`-like: mid-size, moderate congestion.
    pub fn spec_sb1_scaled(scale: f64) -> DesignSpec {
        Self::scaled(
            scale,
            DesignSpec {
                name: "sb1".into(),
                num_cells: 40_000,
                num_nets: 44_000,
                num_macros: 6,
                density: 0.55,
                aspect: 1.0,
                hotspots: vec![
                    Hotspot {
                        at: (0.3, 0.4),
                        amplitude: 2.0,
                        sigma: 0.10,
                    },
                    Hotspot {
                        at: (0.75, 0.7),
                        amplitude: 1.5,
                        sigma: 0.08,
                    },
                ],
                locality: 0.92,
                locality_radius: 0.05,
                mean_fanout: 2.2,
                cuts: CutProfile {
                    at_l4: 3_738,
                    at_l6: 1_075,
                    at_l8: 196,
                },
                jitter: 900,
                congestion_jitter: 3.0,
                z_shape_prob: 0.15,
                seed: 0x5b01,
            },
        )
    }

    /// `superblue5`-like: larger, slightly more congested.
    pub fn spec_sb5_scaled(scale: f64) -> DesignSpec {
        Self::scaled(
            scale,
            DesignSpec {
                name: "sb5".into(),
                num_cells: 42_000,
                num_nets: 46_000,
                num_macros: 8,
                density: 0.58,
                aspect: 1.2,
                hotspots: vec![
                    Hotspot {
                        at: (0.5, 0.5),
                        amplitude: 2.5,
                        sigma: 0.12,
                    },
                    Hotspot {
                        at: (0.2, 0.8),
                        amplitude: 1.2,
                        sigma: 0.07,
                    },
                ],
                locality: 0.90,
                locality_radius: 0.06,
                mean_fanout: 2.4,
                cuts: CutProfile {
                    at_l4: 4_453,
                    at_l6: 1_404,
                    at_l8: 275,
                },
                jitter: 1_100,
                congestion_jitter: 3.5,
                z_shape_prob: 0.20,
                seed: 0x5b05,
            },
        )
    }

    /// `superblue10`-like: the largest v-pin population but an atypical,
    /// sparse v-pin distribution — matches sit unusually close to their
    /// partners, which is why the paper's proximity attack does much better
    /// here than anywhere else.
    pub fn spec_sb10_scaled(scale: f64) -> DesignSpec {
        Self::scaled(
            scale,
            DesignSpec {
                name: "sb10".into(),
                num_cells: 46_000,
                num_nets: 52_000,
                num_macros: 4,
                density: 0.45,
                aspect: 0.9,
                hotspots: vec![Hotspot {
                    at: (0.5, 0.35),
                    amplitude: 1.2,
                    sigma: 0.15,
                }],
                locality: 0.98,
                locality_radius: 0.03,
                mean_fanout: 2.0,
                cuts: CutProfile {
                    at_l4: 5_382,
                    at_l6: 2_180,
                    at_l8: 322,
                },
                jitter: 400,
                congestion_jitter: 1.5,
                z_shape_prob: 0.08,
                seed: 0x5b0a,
            },
        )
    }

    /// `superblue12`-like: the most congested design with by far the largest
    /// candidate lists in the prior work.
    pub fn spec_sb12_scaled(scale: f64) -> DesignSpec {
        Self::scaled(
            scale,
            DesignSpec {
                name: "sb12".into(),
                num_cells: 44_000,
                num_nets: 50_000,
                num_macros: 10,
                density: 0.68,
                aspect: 1.0,
                hotspots: vec![
                    Hotspot {
                        at: (0.35, 0.5),
                        amplitude: 3.5,
                        sigma: 0.14,
                    },
                    Hotspot {
                        at: (0.7, 0.3),
                        amplitude: 3.0,
                        sigma: 0.10,
                    },
                    Hotspot {
                        at: (0.6, 0.8),
                        amplitude: 2.0,
                        sigma: 0.08,
                    },
                ],
                locality: 0.86,
                locality_radius: 0.08,
                mean_fanout: 2.6,
                cuts: CutProfile {
                    at_l4: 4_264,
                    at_l6: 1_900,
                    at_l8: 433,
                },
                jitter: 2_200,
                congestion_jitter: 5.0,
                z_shape_prob: 0.35,
                seed: 0x5b0c,
            },
        )
    }

    /// `superblue18`-like: the smallest design.
    pub fn spec_sb18_scaled(scale: f64) -> DesignSpec {
        Self::scaled(
            scale,
            DesignSpec {
                name: "sb18".into(),
                num_cells: 24_000,
                num_nets: 27_000,
                num_macros: 5,
                density: 0.60,
                aspect: 1.1,
                hotspots: vec![Hotspot {
                    at: (0.4, 0.6),
                    amplitude: 2.2,
                    sigma: 0.11,
                }],
                locality: 0.91,
                locality_radius: 0.05,
                mean_fanout: 2.3,
                cuts: CutProfile {
                    at_l4: 2_129,
                    at_l6: 840,
                    at_l8: 188,
                },
                jitter: 1_000,
                congestion_jitter: 3.0,
                z_shape_prob: 0.18,
                seed: 0x5b12,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_five_distinct_benchmarks() {
        let suite = Suite::ispd2011_like(0.004).expect("valid scale");
        assert_eq!(suite.len(), 5);
        let names: Vec<&str> = suite.benchmarks().iter().map(|b| b.name()).collect();
        assert_eq!(names, ["sb1", "sb5", "sb10", "sb12", "sb18"]);
    }

    #[test]
    fn vpin_populations_match_scaled_targets() {
        let scale = 0.02;
        let suite = Suite::ispd2011_like(scale).expect("valid scale");
        for (bench, spec) in suite.benchmarks().iter().zip(Suite::specs_scaled(scale)) {
            let v8 = bench.split(SplitLayer::new(8).expect("valid")).num_vpins();
            assert_eq!(v8 as u32, 2 * spec.cuts.at_l8, "{}", bench.name());
        }
    }

    #[test]
    fn specs_are_internally_valid_at_many_scales() {
        for scale in [0.004, 0.02, 0.1, 1.0] {
            for spec in Suite::specs_scaled(scale) {
                spec.validate()
                    .unwrap_or_else(|e| panic!("{} at {scale}: {e}", spec.name));
            }
        }
    }

    #[test]
    fn sb12_is_most_congested_spec() {
        let specs = Suite::specs_scaled(1.0);
        let sb12 = specs.iter().find(|s| s.name == "sb12").expect("present");
        for other in specs.iter().filter(|s| s.name != "sb12") {
            assert!(sb12.jitter >= other.jitter);
            assert!(sb12.density >= other.density);
        }
    }
}
