//! Error types for the layout substrate.

/// Errors produced while building or splitting layouts.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LayoutError {
    /// A split layer outside `1..=8` was requested.
    InvalidSplitLayer(u8),
    /// A design specification is internally inconsistent.
    InvalidSpec(String),
    /// A net references a cell or pin that does not exist.
    DanglingReference(String),
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::InvalidSplitLayer(v) => {
                write!(f, "split layer V{v} outside the valid range V1..=V8")
            }
            LayoutError::InvalidSpec(msg) => write!(f, "invalid design spec: {msg}"),
            LayoutError::DanglingReference(msg) => write!(f, "dangling reference: {msg}"),
        }
    }
}

impl std::error::Error for LayoutError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = LayoutError::InvalidSplitLayer(12);
        assert!(e.to_string().contains("V12"));
        let e = LayoutError::InvalidSpec("zero cells".into());
        assert!(e.to_string().contains("zero cells"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LayoutError>();
    }
}
