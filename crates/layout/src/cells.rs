//! Standard-cell library: cell kinds, areas, drive strengths, pin directions.
//!
//! The attack's `InArea`/`OutArea` features (paper Section III-A) exist to
//! let the classifier reason about driver strength, which is "highly
//! correlated with the cell area". The synthetic library therefore spans a
//! wide range of areas and drive strengths — including large sequential
//! cells and hard macros, which produce the outliers visible in the paper's
//! Fig. 8 distributions.

use serde::{Deserialize, Serialize};

/// Direction of a standard-cell pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PinDir {
    /// Cell input (load).
    Input,
    /// Cell output (driver).
    Output,
}

/// One kind of standard cell (or macro) in the library.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellKind {
    /// Library name, e.g. `NAND2_X2`.
    pub name: String,
    /// Cell width in DBU.
    pub width: i64,
    /// Cell height in DBU (one row height for standard cells).
    pub height: i64,
    /// Relative drive strength (X1 = 1).
    pub drive: u8,
    /// Number of input pins.
    pub num_inputs: u8,
    /// Whether this is a hard macro rather than a row cell.
    pub is_macro: bool,
}

impl CellKind {
    /// Cell area in DBU².
    pub fn area(&self) -> i64 {
        self.width * self.height
    }
}

/// Index of a cell kind within its [`CellLibrary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct KindId(pub u32);

/// A library of cell kinds.
///
/// # Examples
///
/// ```
/// use sm_layout::cells::CellLibrary;
///
/// let lib = CellLibrary::standard();
/// assert!(lib.len() > 10);
/// let inv = lib.find("INV_X1").expect("INV_X1 exists");
/// assert_eq!(lib.kind(inv).num_inputs, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellLibrary {
    kinds: Vec<CellKind>,
}

/// Standard-cell row height in DBU.
pub const ROW_HEIGHT: i64 = 1_400;

impl CellLibrary {
    /// A representative library: inverters/buffers in four drive strengths,
    /// 2- and 3-input combinational gates, flip-flops, and two hard-macro
    /// footprints (SRAM-like), giving a broad area distribution.
    pub fn standard() -> Self {
        let h = ROW_HEIGHT;
        let mut kinds = Vec::new();
        let mut gate = |name: &str, w: i64, drive: u8, num_inputs: u8| {
            kinds.push(CellKind {
                name: name.to_owned(),
                width: w,
                height: h,
                drive,
                num_inputs,
                is_macro: false,
            });
        };
        gate("INV_X1", 380, 1, 1);
        gate("INV_X2", 570, 2, 1);
        gate("INV_X4", 950, 4, 1);
        gate("INV_X8", 1_710, 8, 1);
        gate("BUF_X2", 760, 2, 1);
        gate("BUF_X4", 1_140, 4, 1);
        gate("NAND2_X1", 570, 1, 2);
        gate("NAND2_X2", 760, 2, 2);
        gate("NOR2_X1", 570, 1, 2);
        gate("NOR2_X2", 760, 2, 2);
        gate("AOI21_X1", 760, 1, 3);
        gate("OAI21_X1", 760, 1, 3);
        gate("XOR2_X1", 1_140, 1, 2);
        gate("MUX2_X1", 1_330, 1, 3);
        gate("DFF_X1", 2_280, 1, 2);
        gate("DFF_X2", 2_850, 2, 2);
        // Hard macros: huge areas, the outlier sources of Fig. 8.
        kinds.push(CellKind {
            name: "SRAM_1K".to_owned(),
            width: 40_000,
            height: 28_000,
            drive: 4,
            num_inputs: 12,
            is_macro: true,
        });
        kinds.push(CellKind {
            name: "SRAM_4K".to_owned(),
            width: 80_000,
            height: 56_000,
            drive: 8,
            num_inputs: 16,
            is_macro: true,
        });
        Self { kinds }
    }

    /// Number of kinds in the library.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The kind with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn kind(&self, id: KindId) -> &CellKind {
        &self.kinds[id.0 as usize]
    }

    /// Looks up a kind by name.
    pub fn find(&self, name: &str) -> Option<KindId> {
        self.kinds
            .iter()
            .position(|k| k.name == name)
            .map(|i| KindId(i as u32))
    }

    /// Ids of all non-macro kinds.
    pub fn standard_kind_ids(&self) -> Vec<KindId> {
        (0..self.kinds.len())
            .filter(|&i| !self.kinds[i].is_macro)
            .map(|i| KindId(i as u32))
            .collect()
    }

    /// Ids of all macro kinds.
    pub fn macro_kind_ids(&self) -> Vec<KindId> {
        (0..self.kinds.len())
            .filter(|&i| self.kinds[i].is_macro)
            .map(|i| KindId(i as u32))
            .collect()
    }

    /// Iterates over `(id, kind)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (KindId, &CellKind)> {
        self.kinds
            .iter()
            .enumerate()
            .map(|(i, k)| (KindId(i as u32), k))
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_has_broad_area_spread() {
        let lib = CellLibrary::standard();
        let areas: Vec<i64> = lib.iter().map(|(_, k)| k.area()).collect();
        let min = *areas.iter().min().expect("non-empty");
        let max = *areas.iter().max().expect("non-empty");
        // Macros dominate standard cells by orders of magnitude.
        assert!(max / min > 1_000, "area spread {min}..{max} too narrow");
    }

    #[test]
    fn drive_strength_scales_with_area_within_inverters() {
        let lib = CellLibrary::standard();
        let x1 = lib.kind(lib.find("INV_X1").expect("exists"));
        let x8 = lib.kind(lib.find("INV_X8").expect("exists"));
        assert!(x8.drive > x1.drive);
        assert!(x8.area() > x1.area());
    }

    #[test]
    fn macro_split_is_consistent() {
        let lib = CellLibrary::standard();
        let n_std = lib.standard_kind_ids().len();
        let n_mac = lib.macro_kind_ids().len();
        assert_eq!(n_std + n_mac, lib.len());
        assert_eq!(n_mac, 2);
        for id in lib.macro_kind_ids() {
            assert!(lib.kind(id).is_macro);
        }
    }

    #[test]
    fn find_misses_unknown_names() {
        let lib = CellLibrary::standard();
        assert!(lib.find("NAND9_X99").is_none());
    }
}
