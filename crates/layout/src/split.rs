//! Split-manufacturing challenge extraction: the FEOL view and its v-pins.
//!
//! Cutting a routed design at a [`SplitLayer`] produces a [`SplitView`]: the
//! information available to the untrusted foundry. Every net whose routing
//! uses metal above the split is broken, leaving *v-pins* — vias at the
//! split layer — whose below-split geometry (route fragments, connected
//! cell pins, congestion context) the attacker can observe. Which v-pins
//! belong to the same net is the ground truth the attack tries to recover;
//! it is stored separately and only consulted by evaluation code.

use serde::{Deserialize, Serialize};

use crate::cells::PinDir;
use crate::congestion::DensityMap;
use crate::geom::{hpwl, Point, Rect};
use crate::netlist::NetId;
use crate::route::RoutedDesign;
use crate::tech::SplitLayer;

/// Window radius (in g-cells) for the `PC`/`RC` density features.
pub const CONGESTION_WINDOW: usize = 1;

/// One v-pin: a via at the split layer, with every attacker-observable
/// quantity the paper's Section III-A extracts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VPin {
    /// Via location on the split plane (`vx`, `vy`).
    pub loc: Point,
    /// Averaged location of the connected placement-layer pins (`px`, `py`).
    pub pin_loc: Point,
    /// Wirelength `W` of the below-split route fragment connecting this
    /// v-pin to its cell pins.
    pub wirelength: i64,
    /// Summed area of cells connected through an *input* pin.
    pub in_area: i64,
    /// Summed area of cells connected through an *output* pin (the driver).
    pub out_area: i64,
    /// Placement congestion `PC`: pin density around `pin_loc`.
    pub pc: f64,
    /// Routing congestion `RC`: v-pin density around `loc`.
    pub rc: f64,
}

impl VPin {
    /// Whether this v-pin is driven from below (its fragment contains the
    /// net's driver). Pairs where *both* v-pins drive are illegal
    /// (output-to-output shorts) and excluded by the attack.
    pub fn drives(&self) -> bool {
        self.out_area > 0
    }
}

/// The attacker-visible view of a design cut at a split layer, plus the
/// (separately stored) ground-truth matching used for evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SplitView {
    /// Benchmark name this view was cut from.
    pub name: String,
    /// The split layer.
    pub split: SplitLayer,
    /// Die bounds (known to the attacker from the FEOL file).
    pub die: Rect,
    /// All v-pins on the split layer.
    vpins: Vec<VPin>,
    /// Ground truth: `partner[i]` is the index of v-pin `i`'s match.
    partner: Vec<u32>,
    /// Ground truth: the net each v-pin came from.
    net_of: Vec<NetId>,
}

impl SplitView {
    /// Cuts `design` at `split`.
    ///
    /// # Examples
    ///
    /// ```
    /// use sm_layout::generator::generate;
    /// use sm_layout::route::route;
    /// use sm_layout::split::SplitView;
    /// use sm_layout::suite::Suite;
    /// use sm_layout::tech::SplitLayer;
    ///
    /// let routed = route(generate(&Suite::spec_sb1_scaled(0.01))?);
    /// let view = SplitView::cut(&routed, SplitLayer::new(8)?);
    /// assert!(view.num_vpins() > 0);
    /// assert_eq!(view.num_vpins() % 2, 0); // two v-pins per cut net
    /// # Ok::<(), sm_layout::error::LayoutError>(())
    /// ```
    pub fn cut(design: &RoutedDesign, split: SplitLayer) -> Self {
        // First pass: collect raw v-pins (locations + fragment data).
        struct Raw {
            loc: Point,
            pin_loc: Point,
            wirelength: i64,
            in_area: i64,
            out_area: i64,
            net: NetId,
        }
        let mut raws: Vec<Raw> = Vec::new();
        let mut partner: Vec<u32> = Vec::new();

        for rn in &design.routed {
            let Some(crossings) = rn.crossings(split, &design.tech) else {
                continue;
            };
            let base = raws.len() as u32;
            for c in crossings {
                let side = rn.side(c.side);
                let stack = rn.stack(c.side);
                let mut pts: Vec<Point> = Vec::with_capacity(side.pins.len() + 1);
                let mut sx = 0i64;
                let mut sy = 0i64;
                let mut in_area = 0i64;
                let mut out_area = 0i64;
                for &p in &side.pins {
                    let l = design.netlist.pin_location(p);
                    pts.push(l);
                    sx += l.x;
                    sy += l.y;
                    let area = design.netlist.kind_of(p.cell).area();
                    match p.dir {
                        PinDir::Input => in_area += area,
                        PinDir::Output => out_area += area,
                    }
                }
                let n = side.pins.len() as i64;
                // Fragment wirelength: the local below-trunk tree (Steiner
                // lower bound over pins + escape stack) plus any trunk run
                // below the split.
                pts.push(stack);
                let w = hpwl(&pts) + c.below_trunk_len;
                raws.push(Raw {
                    loc: c.loc,
                    pin_loc: Point::new(sx / n.max(1), sy / n.max(1)),
                    wirelength: w,
                    in_area,
                    out_area,
                    net: rn.net,
                });
            }
            partner.push(base + 1);
            partner.push(base);
        }

        // Second pass: congestion features need the full v-pin population.
        let rc_map = DensityMap::from_points(
            design.die,
            design.tech.gcell_size(),
            raws.iter().map(|r| r.loc),
        );
        let vpins: Vec<VPin> = raws
            .iter()
            .map(|r| VPin {
                loc: r.loc,
                pin_loc: r.pin_loc,
                wirelength: r.wirelength,
                in_area: r.in_area,
                out_area: r.out_area,
                pc: design.pin_density.density(r.pin_loc, CONGESTION_WINDOW),
                rc: rc_map.density(r.loc, CONGESTION_WINDOW),
            })
            .collect();
        let net_of = raws.iter().map(|r| r.net).collect();

        Self {
            name: design.name.clone(),
            split,
            die: design.die,
            vpins,
            partner,
            net_of,
        }
    }

    /// Assembles a view from explicit parts — the entry point for defence
    /// transforms (decoy insertion, camouflage) that produce modified
    /// views. `partner` must be a fixed-point-free involution over the
    /// v-pin indices; each pair is assigned a fresh synthetic net id.
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::LayoutError::DanglingReference`] if
    /// `partner` is not a valid matching of `vpins` or any matched pair is
    /// illegal (two drivers).
    pub fn from_parts(
        name: String,
        split: SplitLayer,
        die: Rect,
        vpins: Vec<VPin>,
        partner: Vec<u32>,
    ) -> Result<Self, crate::error::LayoutError> {
        use crate::error::LayoutError;
        if partner.len() != vpins.len() {
            return Err(LayoutError::DanglingReference(
                "one partner entry per v-pin required".into(),
            ));
        }
        let mut net_of = vec![NetId(u32::MAX); vpins.len()];
        let mut next_net = 0u32;
        for (i, &m) in partner.iter().enumerate() {
            let m = m as usize;
            if m >= vpins.len() || m == i || partner[m] as usize != i {
                return Err(LayoutError::DanglingReference(format!(
                    "partner table is not an involution at v-pin {i}"
                )));
            }
            if vpins[i].drives() && vpins[m].drives() {
                return Err(LayoutError::DanglingReference(format!(
                    "matched pair ({i}, {m}) connects two drivers"
                )));
            }
            if i < m {
                net_of[i] = NetId(next_net);
                net_of[m] = NetId(next_net);
                next_net += 1;
            }
        }
        Ok(Self {
            name,
            split,
            die,
            vpins,
            partner,
            net_of,
        })
    }

    /// Number of v-pins.
    pub fn num_vpins(&self) -> usize {
        self.vpins.len()
    }

    /// The v-pins (attacker-visible).
    pub fn vpins(&self) -> &[VPin] {
        &self.vpins
    }

    /// Ground truth: the index of v-pin `i`'s matching partner.
    ///
    /// Evaluation-only — an attack implementation must not consult this.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn true_match(&self, i: usize) -> usize {
        self.partner[i] as usize
    }

    /// Ground truth: the net v-pin `i` belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn net_of(&self, i: usize) -> NetId {
        self.net_of[i]
    }

    /// Whether a candidate pair is *legal*: pairs connecting two driver
    /// fragments would short two cell outputs and are excluded from both
    /// training and testing (paper Section III-B, footnote 1).
    pub fn is_legal_pair(&self, i: usize, j: usize) -> bool {
        i != j && !(self.vpins[i].drives() && self.vpins[j].drives())
    }

    /// Manhattan distance between two v-pins.
    pub fn distance(&self, i: usize, j: usize) -> i64 {
        self.vpins[i].loc.manhattan(self.vpins[j].loc)
    }

    /// Applies Gaussian noise with standard deviation `sd` DBU to every
    /// v-pin's y-coordinate, recomputing the `RC` density, and returns the
    /// obfuscated view (paper Section III-I). Ground truth is unchanged.
    pub fn with_y_noise(&self, sd: f64, seed: u64) -> SplitView {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut out = self.clone();
        for v in &mut out.vpins {
            let noise = crate::route::sample_gauss(&mut rng) * sd;
            v.loc = self.die.clamp(Point::new(v.loc.x, v.loc.y + noise as i64));
        }
        // RC is a function of v-pin locations; recompute it on the noisy set.
        let gcell = crate::tech::Technology::ispd9().gcell_size();
        let rc_map = DensityMap::from_points(out.die, gcell, out.vpins.iter().map(|v| v.loc));
        for v in &mut out.vpins {
            v.rc = rc_map.density(v.loc, CONGESTION_WINDOW);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use crate::route::route;
    use crate::suite::Suite;

    fn view(split: u8) -> SplitView {
        let spec = Suite::spec_sb1_scaled(0.005);
        let routed = route(generate(&spec).expect("valid"));
        SplitView::cut(&routed, SplitLayer::new(split).expect("valid"))
    }

    #[test]
    fn truth_is_a_perfect_matching() {
        let v = view(6);
        for i in 0..v.num_vpins() {
            let m = v.true_match(i);
            assert_ne!(m, i);
            assert_eq!(v.true_match(m), i, "matching must be an involution");
            assert_eq!(v.net_of(i), v.net_of(m), "partners share a net");
        }
    }

    #[test]
    fn matching_pairs_are_legal() {
        let v = view(6);
        for i in 0..v.num_vpins() {
            assert!(
                v.is_legal_pair(i, v.true_match(i)),
                "true pairs never short two drivers"
            );
        }
    }

    #[test]
    fn exactly_one_side_drives() {
        let v = view(4);
        for i in 0..v.num_vpins() {
            let m = v.true_match(i);
            let drives = [v.vpins()[i].drives(), v.vpins()[m].drives()];
            assert_eq!(
                drives.iter().filter(|d| **d).count(),
                1,
                "exactly one side of a cut net carries the driver"
            );
        }
    }

    #[test]
    fn vpin_counts_grow_toward_lower_layers() {
        let n8 = view(8).num_vpins();
        let n6 = view(6).num_vpins();
        let n4 = view(4).num_vpins();
        assert!(n4 > n6 && n6 > n8, "got {n4} / {n6} / {n8}");
        // Paper ratio is roughly 14 : 5 : 1.
        assert!(n6 as f64 / n8 as f64 > 3.0);
        assert!(n4 as f64 / n8 as f64 > 8.0);
    }

    #[test]
    fn split8_matches_share_y() {
        let v = view(8);
        for i in 0..v.num_vpins() {
            let m = v.true_match(i);
            assert_eq!(v.vpins()[i].loc.y, v.vpins()[m].loc.y);
        }
    }

    #[test]
    fn features_are_physical() {
        let v = view(6);
        for p in v.vpins() {
            assert!(p.wirelength >= 0);
            assert!(p.in_area >= 0 && p.out_area >= 0);
            assert!(
                p.in_area + p.out_area > 0,
                "a fragment connects at least one pin"
            );
            assert!(p.pc >= 0.0 && p.rc > 0.0);
            assert!(v.die.contains(p.loc) || v.die.clamp(p.loc) == p.loc);
        }
    }

    #[test]
    fn y_noise_moves_vpins_but_keeps_truth() {
        let v = view(6);
        let sd = v.die.height() as f64 * 0.01;
        let noisy = v.with_y_noise(sd, 42);
        assert_eq!(noisy.num_vpins(), v.num_vpins());
        let moved = (0..v.num_vpins())
            .filter(|&i| noisy.vpins()[i].loc != v.vpins()[i].loc)
            .count();
        assert!(
            moved > v.num_vpins() / 2,
            "noise should displace most v-pins"
        );
        let same_x = (0..v.num_vpins()).all(|i| noisy.vpins()[i].loc.x == v.vpins()[i].loc.x);
        assert!(same_x, "only y is obfuscated");
        for i in 0..v.num_vpins() {
            assert_eq!(noisy.true_match(i), v.true_match(i));
        }
    }

    #[test]
    fn rc_reflects_local_vpin_density() {
        let v = view(4);
        // The densest v-pin should have RC well above the sparsest.
        let max = v.vpins().iter().map(|p| p.rc).fold(0.0, f64::max);
        let min = v.vpins().iter().map(|p| p.rc).fold(f64::INFINITY, f64::min);
        assert!(max > 2.0 * min, "RC spread too flat: {min}..{max}");
    }
}
