//! Rectilinear spanning/Steiner tree length estimation.
//!
//! The attack's `TotalWirelength` feature exists because "the wirelength
//! of each net impacts timing" (Section III-B): a candidate v-pin pair
//! implies a *reconstructed* net whose total length must be plausible.
//! Estimating that length for multi-pin fragments needs a rectilinear
//! tree estimate better than the half-perimeter lower bound. This module
//! provides:
//!
//! - [`rmst_length`] — exact rectilinear *minimum spanning tree* length
//!   (Prim, O(n²)), an upper bound on the Steiner minimal tree within a
//!   factor of 1.5;
//! - [`rsmt_estimate`] — a refined estimate that improves the RMST with
//!   single Steiner-point insertions on the Hanan grid (one pass), which
//!   closes most of the RMST/RSMT gap on small nets.

use crate::geom::Point;

/// Rectilinear minimum spanning tree length over `points` (0 for fewer
/// than two points).
///
/// # Examples
///
/// ```
/// use sm_layout::geom::Point;
/// use sm_layout::steiner::rmst_length;
///
/// let pts = [Point::new(0, 0), Point::new(10, 0), Point::new(0, 10)];
/// assert_eq!(rmst_length(&pts), 20);
/// ```
pub fn rmst_length(points: &[Point]) -> i64 {
    if points.len() < 2 {
        return 0;
    }
    // Prim's algorithm with O(n²) dense updates.
    let n = points.len();
    let mut in_tree = vec![false; n];
    let mut dist = vec![i64::MAX; n];
    in_tree[0] = true;
    for i in 1..n {
        dist[i] = points[0].manhattan(points[i]);
    }
    let mut total = 0i64;
    for _ in 1..n {
        let mut best = usize::MAX;
        let mut best_d = i64::MAX;
        for i in 0..n {
            if !in_tree[i] && dist[i] < best_d {
                best = i;
                best_d = dist[i];
            }
        }
        total += best_d;
        in_tree[best] = true;
        for i in 0..n {
            if !in_tree[i] {
                let d = points[best].manhattan(points[i]);
                if d < dist[i] {
                    dist[i] = d;
                }
            }
        }
    }
    total
}

/// Steiner-tree length estimate: the RMST improved by greedily inserting
/// the single best Hanan-grid Steiner point (the intersection of one
/// point's x with another's y), repeated until no insertion helps.
///
/// Always satisfies `hpwl <= rsmt_estimate <= rmst_length`.
pub fn rsmt_estimate(points: &[Point]) -> i64 {
    if points.len() < 3 {
        return rmst_length(points);
    }
    let mut pts = points.to_vec();
    let mut best = rmst_length(&pts);
    // Bounded passes: each accepted Steiner point strictly reduces length.
    for _ in 0..points.len().min(8) {
        let mut improved = None;
        // Candidate Steiner points from the Hanan grid of the *original*
        // terminals (a full scan is O(n²) candidates × O(n²) Prim — fine
        // for net degrees ≤ ~12 as produced by the generator).
        for a in points {
            for b in points {
                let cand = Point::new(a.x, b.y);
                if pts.contains(&cand) {
                    continue;
                }
                pts.push(cand);
                let len = rmst_length(&pts);
                pts.pop();
                if len < best {
                    best = len;
                    improved = Some(cand);
                }
            }
        }
        match improved {
            Some(p) => pts.push(p),
            None => break,
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::hpwl;

    #[test]
    fn degenerate_inputs() {
        assert_eq!(rmst_length(&[]), 0);
        assert_eq!(rmst_length(&[Point::new(5, 5)]), 0);
        assert_eq!(rsmt_estimate(&[Point::new(1, 2), Point::new(3, 4)]), 4);
    }

    #[test]
    fn two_points_is_manhattan_distance() {
        let a = Point::new(0, 0);
        let b = Point::new(7, -3);
        assert_eq!(rmst_length(&[a, b]), 10);
    }

    #[test]
    fn steiner_point_saves_on_the_t_configuration() {
        // Three corners of a cross: RMST = 40, RSMT = 30 via the centre.
        let pts = [Point::new(0, 0), Point::new(20, 0), Point::new(10, 10)];
        assert_eq!(rmst_length(&pts), 20 + 20);
        assert_eq!(rsmt_estimate(&pts), 30);
    }

    #[test]
    fn estimate_is_sandwiched_between_bounds() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(12);
        for _ in 0..30 {
            let n = rng.gen_range(2..9);
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.gen_range(0..1000), rng.gen_range(0..1000)))
                .collect();
            let h = hpwl(&pts);
            let mst = rmst_length(&pts);
            let est = rsmt_estimate(&pts);
            assert!(h <= est, "hpwl {h} must lower-bound the estimate {est}");
            assert!(est <= mst, "estimate {est} must not exceed the RMST {mst}");
            // Classic bound: RMST <= 1.5 * RSMT, so est >= 2/3 RMST.
            assert!(
                3 * est >= 2 * mst,
                "estimate {est} below the 2/3 RMST bound of {mst}"
            );
        }
    }

    #[test]
    fn collinear_points_need_no_steiner_points() {
        let pts = [
            Point::new(0, 0),
            Point::new(5, 0),
            Point::new(9, 0),
            Point::new(20, 0),
        ];
        assert_eq!(rmst_length(&pts), 20);
        assert_eq!(rsmt_estimate(&pts), 20);
    }

    #[test]
    fn rmst_is_permutation_invariant() {
        let a = [
            Point::new(0, 0),
            Point::new(10, 3),
            Point::new(-4, 7),
            Point::new(2, -9),
        ];
        let mut b = a.to_vec();
        b.reverse();
        assert_eq!(rmst_length(&a), rmst_length(&b));
    }
}
