//! Density maps used for the congestion features.
//!
//! The paper's two congestion features (Section III-A) are
//! *placement congestion* `PC` — "the pin density around the pin that
//! connects to the target v-pin" — and *routing congestion* `RC` — "the
//! v-pin density around the target v-pin". Both are window densities over a
//! uniform g-cell grid, which this module provides.

use serde::{Deserialize, Serialize};

use crate::geom::{Grid, Point, Rect};

/// A count-per-g-cell map supporting window-density queries.
///
/// # Examples
///
/// ```
/// use sm_layout::congestion::DensityMap;
/// use sm_layout::geom::{Point, Rect};
///
/// let mut m = DensityMap::new(Rect::with_size(100, 100), 10);
/// m.add(Point::new(5, 5));
/// m.add(Point::new(6, 5));
/// assert!(m.density(Point::new(5, 5), 1) > 0.0);
/// assert_eq!(m.density(Point::new(95, 95), 1), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensityMap {
    grid: Grid,
    counts: Vec<u32>,
    total: u64,
}

impl DensityMap {
    /// Creates an empty map over `bounds` with square g-cells of side `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell <= 0` or `bounds` is degenerate (see [`Grid::new`]).
    pub fn new(bounds: Rect, cell: i64) -> Self {
        let grid = Grid::new(bounds, cell);
        let counts = vec![0; grid.len()];
        Self {
            grid,
            counts,
            total: 0,
        }
    }

    /// Builds a map directly from a set of points.
    pub fn from_points(bounds: Rect, cell: i64, points: impl IntoIterator<Item = Point>) -> Self {
        let mut map = Self::new(bounds, cell);
        for p in points {
            map.add(p);
        }
        map
    }

    /// Registers one object at `p` (clamped into bounds).
    pub fn add(&mut self, p: Point) {
        let idx = self.grid.flat_of(p);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Total number of registered objects.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The underlying grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Raw count in the window of radius `r` g-cells around `p`.
    pub fn window_count(&self, p: Point, r: usize) -> u32 {
        self.grid.window(p, r).map(|i| self.counts[i]).sum()
    }

    /// Density around `p`: objects per g-cell in the `(2r+1)²` window
    /// (normalised by the number of cells actually inside the grid, so edge
    /// windows are not artificially deflated).
    pub fn density(&self, p: Point, r: usize) -> f64 {
        let cells = self.grid.window(p, r).count();
        if cells == 0 {
            return 0.0;
        }
        f64::from(self.window_count(p, r)) / cells as f64
    }

    /// Mean density over the whole map (objects per g-cell).
    pub fn mean_density(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        self.total as f64 / self.counts.len() as f64
    }
}

/// Per-layer routing demand accumulated by the router, used to model
/// congestion-driven detours: the more demand a g-cell already carries
/// relative to its track capacity, the further the router displaces
/// subsequent wires passing through it.
#[derive(Debug, Clone)]
pub struct DemandMap {
    grid: Grid,
    /// demand[layer-1][cell]
    demand: Vec<Vec<u32>>,
    capacity: Vec<u32>,
}

impl DemandMap {
    /// Creates an all-zero demand map for `layers` metal layers with the
    /// given per-g-cell capacities (indexed by layer − 1).
    ///
    /// # Panics
    ///
    /// Panics if `capacity.len() != layers`.
    pub fn new(bounds: Rect, cell: i64, layers: u8, capacity: Vec<u32>) -> Self {
        assert_eq!(capacity.len(), layers as usize, "one capacity per layer");
        let grid = Grid::new(bounds, cell);
        let demand = (0..layers).map(|_| vec![0; grid.len()]).collect();
        Self {
            grid,
            demand,
            capacity,
        }
    }

    /// Adds one track of demand on layer `m` along the axis-aligned segment
    /// `a -> b` (inclusive of both endpoint g-cells).
    ///
    /// # Panics
    ///
    /// Panics if the segment is not axis-aligned or `m` is out of range.
    pub fn add_segment(&mut self, m: u8, a: Point, b: Point) {
        assert!(a.x == b.x || a.y == b.y, "router segments are axis-aligned");
        let layer = &mut self.demand[(m - 1) as usize];
        let (ax, ay) = self.grid.locate(a);
        let (bx, by) = self.grid.locate(b);
        let (x0, x1) = (ax.min(bx), ax.max(bx));
        let (y0, y1) = (ay.min(by), ay.max(by));
        for iy in y0..=y1 {
            for ix in x0..=x1 {
                layer[iy * self.grid.nx() + ix] += 1;
            }
        }
    }

    /// Congestion ratio (demand / capacity) at `p` on layer `m`.
    pub fn utilisation(&self, m: u8, p: Point) -> f64 {
        let idx = self.grid.flat_of(p);
        f64::from(self.demand[(m - 1) as usize][idx]) / f64::from(self.capacity[(m - 1) as usize])
    }

    /// Maximum utilisation across all layers at `p`.
    pub fn peak_utilisation(&self, p: Point) -> f64 {
        (1..=self.demand.len() as u8)
            .map(|m| self.utilisation(m, p))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_map_counts_and_normalises() {
        let mut m = DensityMap::new(Rect::with_size(100, 100), 10);
        for i in 0..10 {
            m.add(Point::new(i, i)); // all land in g-cell (0,0)
        }
        assert_eq!(m.total(), 10);
        assert_eq!(m.window_count(Point::new(0, 0), 0), 10);
        // Corner window of radius 1 covers 4 cells.
        assert!((m.density(Point::new(0, 0), 1) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn density_map_clamps_out_of_bounds_points() {
        let mut m = DensityMap::new(Rect::with_size(100, 100), 10);
        m.add(Point::new(-50, 4_000));
        assert_eq!(m.total(), 1);
        assert_eq!(m.window_count(Point::new(0, 99), 0), 1);
    }

    #[test]
    fn mean_density_is_total_over_cells() {
        let mut m = DensityMap::new(Rect::with_size(100, 100), 10);
        for x in 0..100 {
            m.add(Point::new(x, 0));
        }
        assert!((m.mean_density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn demand_map_accumulates_along_segment() {
        let mut d = DemandMap::new(Rect::with_size(100, 100), 10, 2, vec![10, 5]);
        d.add_segment(1, Point::new(0, 5), Point::new(99, 5));
        assert!((d.utilisation(1, Point::new(50, 5)) - 0.1).abs() < 1e-12);
        assert_eq!(d.utilisation(2, Point::new(50, 5)), 0.0);
        d.add_segment(2, Point::new(50, 0), Point::new(50, 99));
        assert!((d.peak_utilisation(Point::new(50, 5)) - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "axis-aligned")]
    fn demand_map_rejects_diagonal_segments() {
        let mut d = DemandMap::new(Rect::with_size(100, 100), 10, 1, vec![10]);
        d.add_segment(1, Point::new(0, 0), Point::new(9, 9));
    }
}
