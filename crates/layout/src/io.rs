//! Plain-text interchange format for split-manufacturing challenges.
//!
//! A [`SplitView`] serialises to two files:
//!
//! - a **challenge** (`*.challenge`) — everything the untrusted foundry
//!   sees: die, split layer, and one line per v-pin with its location,
//!   placement-pin location, below-split wirelength, in/out cell areas and
//!   congestion values;
//! - a **truth** file (`*.truth`) — the hidden matching, used only for
//!   scoring an attack.
//!
//! The format is line-oriented, whitespace-separated, `#`-commented, and
//! versioned; it needs no dependencies and diffs cleanly under version
//! control.
//!
//! ```text
//! # splitmfg challenge v1
//! name sb1
//! split 8
//! die 0 0 273000 273000
//! vpins 2
//! 0 1000 2000 900 1900 3400 266000 0 1.5 2.0
//! 1 5000 2000 5100 2100 1200 0 532000 1.0 1.0
//! ```

use std::fmt::Write as _;

use crate::geom::{Point, Rect};
use crate::split::{SplitView, VPin};
use crate::tech::SplitLayer;

/// Errors produced while parsing challenge/truth files.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseChallengeError {
    /// The header line or version marker is missing or unsupported.
    BadHeader(String),
    /// A required field is missing or malformed.
    BadField {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The v-pin count does not match the declared `vpins` header.
    CountMismatch {
        /// Declared count.
        declared: usize,
        /// Lines actually present.
        found: usize,
    },
    /// The truth table is not a valid matching.
    BadTruth(String),
}

impl std::fmt::Display for ParseChallengeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseChallengeError::BadHeader(h) => write!(f, "unsupported header: {h}"),
            ParseChallengeError::BadField { line, message } => {
                write!(f, "line {line}: {message}")
            }
            ParseChallengeError::CountMismatch { declared, found } => {
                write!(f, "declared {declared} v-pins but found {found}")
            }
            ParseChallengeError::BadTruth(m) => write!(f, "invalid truth table: {m}"),
        }
    }
}

impl std::error::Error for ParseChallengeError {}

const CHALLENGE_HEADER: &str = "# splitmfg challenge v1";
const TRUTH_HEADER: &str = "# splitmfg truth v1";

/// Serialises the attacker-visible challenge.
pub fn write_challenge(view: &SplitView) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{CHALLENGE_HEADER}");
    let _ = writeln!(out, "name {}", view.name);
    let _ = writeln!(out, "split {}", view.split.via_index());
    let _ = writeln!(
        out,
        "die {} {} {} {}",
        view.die.lo.x, view.die.lo.y, view.die.hi.x, view.die.hi.y
    );
    let _ = writeln!(out, "vpins {}", view.num_vpins());
    let _ = writeln!(out, "# idx vx vy px py w in_area out_area pc rc");
    for (i, vp) in view.vpins().iter().enumerate() {
        let _ = writeln!(
            out,
            "{i} {} {} {} {} {} {} {} {} {}",
            vp.loc.x,
            vp.loc.y,
            vp.pin_loc.x,
            vp.pin_loc.y,
            vp.wirelength,
            vp.in_area,
            vp.out_area,
            vp.pc,
            vp.rc
        );
    }
    out
}

/// Serialises the hidden matching (one `i j` line per pair, `i < j`).
pub fn write_truth(view: &SplitView) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{TRUTH_HEADER}");
    let _ = writeln!(out, "name {}", view.name);
    for i in 0..view.num_vpins() {
        let m = view.true_match(i);
        if i < m {
            let _ = writeln!(out, "{i} {m}");
        }
    }
    out
}

/// Parses a challenge and its truth file back into a [`SplitView`].
///
/// # Errors
///
/// Returns a [`ParseChallengeError`] describing the first malformed line.
pub fn read_challenge(challenge: &str, truth: &str) -> Result<SplitView, ParseChallengeError> {
    let mut lines = challenge.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseChallengeError::BadHeader("empty file".into()))?;
    if header.trim() != CHALLENGE_HEADER {
        return Err(ParseChallengeError::BadHeader(header.to_owned()));
    }

    let mut name = String::new();
    let mut split = None;
    let mut die = None;
    let mut declared = None;
    let mut vpins: Vec<VPin> = Vec::new();

    for (ln, raw) in lines {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tok = line.split_whitespace();
        let first = tok.next().expect("non-empty line has a token");
        match first {
            "name" => {
                name = tok.next().unwrap_or("").to_owned();
            }
            "split" => {
                let v: u8 = parse_tok(&mut tok, ln, "split layer")?;
                split = Some(
                    SplitLayer::new(v).map_err(|e| ParseChallengeError::BadField {
                        line: ln + 1,
                        message: e.to_string(),
                    })?,
                );
            }
            "die" => {
                let x0: i64 = parse_tok(&mut tok, ln, "die x0")?;
                let y0: i64 = parse_tok(&mut tok, ln, "die y0")?;
                let x1: i64 = parse_tok(&mut tok, ln, "die x1")?;
                let y1: i64 = parse_tok(&mut tok, ln, "die y1")?;
                if x1 <= x0 || y1 <= y0 {
                    return Err(ParseChallengeError::BadField {
                        line: ln + 1,
                        message: "degenerate die".into(),
                    });
                }
                die = Some(Rect::new(Point::new(x0, y0), Point::new(x1, y1)));
            }
            "vpins" => {
                declared = Some(parse_tok::<usize>(&mut tok, ln, "v-pin count")?);
            }
            _ => {
                // A v-pin record: idx vx vy px py w in out pc rc.
                let _idx: usize = first.parse().map_err(|_| ParseChallengeError::BadField {
                    line: ln + 1,
                    message: format!("unknown directive '{first}'"),
                })?;
                let vx: i64 = parse_tok(&mut tok, ln, "vx")?;
                let vy: i64 = parse_tok(&mut tok, ln, "vy")?;
                let px: i64 = parse_tok(&mut tok, ln, "px")?;
                let py: i64 = parse_tok(&mut tok, ln, "py")?;
                let w: i64 = parse_tok(&mut tok, ln, "wirelength")?;
                let in_area: i64 = parse_tok(&mut tok, ln, "in_area")?;
                let out_area: i64 = parse_tok(&mut tok, ln, "out_area")?;
                let pc: f64 = parse_tok(&mut tok, ln, "pc")?;
                let rc: f64 = parse_tok(&mut tok, ln, "rc")?;
                vpins.push(VPin {
                    loc: Point::new(vx, vy),
                    pin_loc: Point::new(px, py),
                    wirelength: w,
                    in_area,
                    out_area,
                    pc,
                    rc,
                });
            }
        }
    }

    let split = split.ok_or_else(|| ParseChallengeError::BadHeader("missing split".into()))?;
    let die = die.ok_or_else(|| ParseChallengeError::BadHeader("missing die".into()))?;
    if let Some(d) = declared {
        if d != vpins.len() {
            return Err(ParseChallengeError::CountMismatch {
                declared: d,
                found: vpins.len(),
            });
        }
    }

    // Truth file.
    let mut partner = vec![u32::MAX; vpins.len()];
    for (ln, raw) in truth.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("name") {
            continue;
        }
        let mut tok = line.split_whitespace();
        let i: usize = parse_tok(&mut tok, ln, "pair lhs")?;
        let j: usize = parse_tok(&mut tok, ln, "pair rhs")?;
        if i >= partner.len() || j >= partner.len() {
            return Err(ParseChallengeError::BadTruth(format!(
                "pair ({i}, {j}) out of range"
            )));
        }
        partner[i] = j as u32;
        partner[j] = i as u32;
    }
    if partner.contains(&u32::MAX) {
        return Err(ParseChallengeError::BadTruth(
            "some v-pins are unmatched".into(),
        ));
    }

    SplitView::from_parts(name, split, die, vpins, partner)
        .map_err(|e| ParseChallengeError::BadTruth(e.to_string()))
}

fn parse_tok<T: std::str::FromStr>(
    tok: &mut std::str::SplitWhitespace<'_>,
    line: usize,
    what: &str,
) -> Result<T, ParseChallengeError> {
    tok.next()
        .ok_or_else(|| ParseChallengeError::BadField {
            line: line + 1,
            message: format!("missing {what}"),
        })?
        .parse()
        .map_err(|_| ParseChallengeError::BadField {
            line: line + 1,
            message: format!("malformed {what}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::Suite;

    fn view() -> SplitView {
        Suite::ispd2011_like(0.01)
            .expect("valid scale")
            .split_all(SplitLayer::new(8).expect("valid"))
            .remove(0)
    }

    #[test]
    fn roundtrip_preserves_everything_observable() {
        let v = view();
        let restored =
            read_challenge(&write_challenge(&v), &write_truth(&v)).expect("roundtrip parses");
        assert_eq!(restored.name, v.name);
        assert_eq!(restored.split, v.split);
        assert_eq!(restored.die, v.die);
        assert_eq!(restored.num_vpins(), v.num_vpins());
        for i in 0..v.num_vpins() {
            assert_eq!(restored.vpins()[i].loc, v.vpins()[i].loc);
            assert_eq!(restored.vpins()[i].wirelength, v.vpins()[i].wirelength);
            assert!((restored.vpins()[i].pc - v.vpins()[i].pc).abs() < 1e-9);
            assert_eq!(restored.true_match(i), v.true_match(i));
        }
    }

    #[test]
    fn rejects_bad_headers() {
        let v = view();
        let err = read_challenge("# not a challenge\n", &write_truth(&v));
        assert!(matches!(err, Err(ParseChallengeError::BadHeader(_))));
    }

    #[test]
    fn rejects_count_mismatch() {
        let v = view();
        let mut text = write_challenge(&v);
        // Drop the final v-pin record.
        text.truncate(text.trim_end().rfind('\n').expect("multi-line"));
        let err = read_challenge(&text, &write_truth(&v));
        assert!(matches!(
            err,
            Err(ParseChallengeError::CountMismatch { .. })
        ));
    }

    #[test]
    fn rejects_incomplete_truth() {
        let v = view();
        let truth = format!("{TRUTH_HEADER}\nname x\n0 1\n");
        if v.num_vpins() > 2 {
            let err = read_challenge(&write_challenge(&v), &truth);
            assert!(matches!(err, Err(ParseChallengeError::BadTruth(_))));
        }
    }

    #[test]
    fn rejects_malformed_records() {
        let v = view();
        let text = write_challenge(&v).replace("vpins", "vpins not_a_number\n#");
        let err = read_challenge(&text, &write_truth(&v));
        assert!(err.is_err());
    }

    #[test]
    fn error_messages_are_located() {
        let text = format!("{CHALLENGE_HEADER}\nsplit banana\n");
        match read_challenge(&text, "") {
            Err(ParseChallengeError::BadField { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains("split layer"));
            }
            other => panic!("expected BadField, got {other:?}"),
        }
    }
}
