//! Gate-level netlist: cell instances and driver/sink nets.

use serde::{Deserialize, Serialize};

use crate::cells::{CellKind, CellLibrary, KindId, PinDir};
use crate::error::LayoutError;
use crate::geom::Point;

/// Identifier of a cell instance within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId(pub u32);

/// Identifier of a net within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NetId(pub u32);

/// A placed cell instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellInst {
    /// The library kind of this instance.
    pub kind: KindId,
    /// Lower-left placement location (filled in by the placer; the origin
    /// until then).
    pub origin: Point,
}

/// A reference to one pin of one cell instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PinRef {
    /// The owning cell.
    pub cell: CellId,
    /// Whether this pin drives or loads the net.
    pub dir: PinDir,
}

/// A signal net: exactly one driver (a cell output pin) and one or more
/// sinks (cell input pins).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Net {
    /// The driving output pin.
    pub driver: PinRef,
    /// The loading input pins.
    pub sinks: Vec<PinRef>,
}

impl Net {
    /// All pins of the net, driver first.
    pub fn pins(&self) -> impl Iterator<Item = PinRef> + '_ {
        std::iter::once(self.driver).chain(self.sinks.iter().copied())
    }

    /// Total pin count (driver + sinks).
    pub fn degree(&self) -> usize {
        1 + self.sinks.len()
    }
}

/// A gate-level netlist bound to a [`CellLibrary`].
///
/// # Examples
///
/// ```
/// use sm_layout::cells::{CellLibrary, PinDir};
/// use sm_layout::netlist::{Netlist, PinRef};
///
/// let lib = CellLibrary::standard();
/// let inv = lib.find("INV_X1").expect("exists");
/// let mut nl = Netlist::new(lib);
/// let a = nl.add_cell(inv);
/// let b = nl.add_cell(inv);
/// let net = nl.add_net(
///     PinRef { cell: a, dir: PinDir::Output },
///     vec![PinRef { cell: b, dir: PinDir::Input }],
/// )?;
/// assert_eq!(nl.net(net).degree(), 2);
/// # Ok::<(), sm_layout::error::LayoutError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    library: CellLibrary,
    cells: Vec<CellInst>,
    nets: Vec<Net>,
}

impl Netlist {
    /// Creates an empty netlist over `library`.
    pub fn new(library: CellLibrary) -> Self {
        Self {
            library,
            cells: Vec::new(),
            nets: Vec::new(),
        }
    }

    /// The cell library.
    pub fn library(&self) -> &CellLibrary {
        &self.library
    }

    /// Adds an (unplaced) instance of `kind` and returns its id.
    pub fn add_cell(&mut self, kind: KindId) -> CellId {
        let id = CellId(self.cells.len() as u32);
        self.cells.push(CellInst {
            kind,
            origin: Point::new(0, 0),
        });
        id
    }

    /// Adds a net with the given driver and sinks.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::DanglingReference`] if any pin references a
    /// missing cell, the driver is not an output pin, any sink is not an
    /// input pin, or the sink list is empty.
    pub fn add_net(&mut self, driver: PinRef, sinks: Vec<PinRef>) -> Result<NetId, LayoutError> {
        if driver.dir != PinDir::Output {
            return Err(LayoutError::DanglingReference(
                "net driver must be an output pin".into(),
            ));
        }
        if sinks.is_empty() {
            return Err(LayoutError::DanglingReference(
                "net must have at least one sink".into(),
            ));
        }
        for pin in std::iter::once(&driver).chain(sinks.iter()) {
            if pin.cell.0 as usize >= self.cells.len() {
                return Err(LayoutError::DanglingReference(format!(
                    "pin references missing cell {}",
                    pin.cell.0
                )));
            }
        }
        if sinks.iter().any(|s| s.dir != PinDir::Input) {
            return Err(LayoutError::DanglingReference(
                "net sinks must be input pins".into(),
            ));
        }
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net { driver, sinks });
        Ok(id)
    }

    /// Number of cell instances.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// The instance with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn cell(&self, id: CellId) -> &CellInst {
        &self.cells[id.0 as usize]
    }

    /// The library kind of instance `id`.
    pub fn kind_of(&self, id: CellId) -> &CellKind {
        self.library.kind(self.cell(id).kind)
    }

    /// The net with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0 as usize]
    }

    /// Iterates over all cell ids.
    pub fn cell_ids(&self) -> impl Iterator<Item = CellId> {
        (0..self.cells.len() as u32).map(CellId)
    }

    /// Iterates over all net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> {
        (0..self.nets.len() as u32).map(NetId)
    }

    /// Sets the placement origin of a cell (used by the placer).
    pub(crate) fn place_cell(&mut self, id: CellId, origin: Point) {
        self.cells[id.0 as usize].origin = origin;
    }

    /// Physical pin location of `pin`: the centre of its owning cell.
    ///
    /// The synthetic flow does not model intra-cell pin offsets; all pins of
    /// a cell share the cell centre, which is accurate at the g-cell
    /// granularity the attack features operate on.
    pub fn pin_location(&self, pin: PinRef) -> Point {
        let inst = self.cell(pin.cell);
        let kind = self.library.kind(inst.kind);
        Point::new(
            inst.origin.x + kind.width / 2,
            inst.origin.y + kind.height / 2,
        )
    }

    /// Locations of every pin of net `id` (driver first).
    pub fn net_pin_locations(&self, id: NetId) -> Vec<Point> {
        self.net(id).pins().map(|p| self.pin_location(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::hpwl;

    fn tiny() -> (Netlist, CellId, CellId) {
        let lib = CellLibrary::standard();
        let inv = lib.find("INV_X1").expect("exists");
        let mut nl = Netlist::new(lib);
        let a = nl.add_cell(inv);
        let b = nl.add_cell(inv);
        (nl, a, b)
    }

    #[test]
    fn add_net_validates_driver_direction() {
        let (mut nl, a, b) = tiny();
        let err = nl.add_net(
            PinRef {
                cell: a,
                dir: PinDir::Input,
            },
            vec![PinRef {
                cell: b,
                dir: PinDir::Input,
            }],
        );
        assert!(err.is_err());
    }

    #[test]
    fn add_net_validates_sink_direction_and_nonempty() {
        let (mut nl, a, b) = tiny();
        assert!(nl
            .add_net(
                PinRef {
                    cell: a,
                    dir: PinDir::Output
                },
                vec![]
            )
            .is_err());
        assert!(nl
            .add_net(
                PinRef {
                    cell: a,
                    dir: PinDir::Output
                },
                vec![PinRef {
                    cell: b,
                    dir: PinDir::Output
                }],
            )
            .is_err());
    }

    #[test]
    fn add_net_rejects_missing_cells() {
        let (mut nl, a, _) = tiny();
        let ghost = CellId(999);
        assert!(nl
            .add_net(
                PinRef {
                    cell: a,
                    dir: PinDir::Output
                },
                vec![PinRef {
                    cell: ghost,
                    dir: PinDir::Input
                }],
            )
            .is_err());
    }

    #[test]
    fn pin_locations_track_placement() {
        let (mut nl, a, b) = tiny();
        let net = nl
            .add_net(
                PinRef {
                    cell: a,
                    dir: PinDir::Output,
                },
                vec![PinRef {
                    cell: b,
                    dir: PinDir::Input,
                }],
            )
            .expect("valid net");
        nl.place_cell(a, Point::new(0, 0));
        nl.place_cell(b, Point::new(10_000, 0));
        let locs = nl.net_pin_locations(net);
        assert_eq!(locs.len(), 2);
        assert_eq!(hpwl(&locs), 10_000);
    }

    #[test]
    fn degree_counts_driver_and_sinks() {
        let (mut nl, a, b) = tiny();
        let c = nl.add_cell(nl.library().find("NAND2_X1").expect("exists"));
        let net = nl
            .add_net(
                PinRef {
                    cell: a,
                    dir: PinDir::Output,
                },
                vec![
                    PinRef {
                        cell: b,
                        dir: PinDir::Input,
                    },
                    PinRef {
                        cell: c,
                        dir: PinDir::Input,
                    },
                ],
            )
            .expect("valid net");
        assert_eq!(nl.net(net).degree(), 3);
        assert_eq!(nl.net(net).pins().count(), 3);
    }
}
