//! Synthetic process technology: the metal/via stack.
//!
//! Mirrors the ISPD-2011 setup the paper evaluates on: **9 routing metal
//! layers** (M1–M9) with alternating preferred direction and **8 via layers**
//! (V1–V8), with significant (4×) variation in wire width — and therefore in
//! per-layer track capacity — across the stack.
//!
//! The convention follows the paper's Section III-G: the *top* metal layer
//! M9 is horizontally routed, which forces matching v-pin pairs at split
//! layer 8 to have zero y-distance. Alternation then fixes every other
//! layer: odd layers horizontal, even layers vertical.

use serde::{Deserialize, Serialize};

use crate::error::LayoutError;

/// Preferred routing direction of a metal layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Wires run along x.
    Horizontal,
    /// Wires run along y.
    Vertical,
}

impl Direction {
    /// The other direction.
    pub fn flipped(self) -> Direction {
        match self {
            Direction::Horizontal => Direction::Vertical,
            Direction::Vertical => Direction::Horizontal,
        }
    }
}

/// One metal layer of the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetalLayer {
    /// 1-based layer index (M1 = 1).
    pub index: u8,
    /// Preferred routing direction.
    pub direction: Direction,
    /// Wire width in DBU.
    pub width: i64,
    /// Track pitch in DBU (width + spacing). Upper layers are wider and
    /// sparser, so they carry fewer, longer wires.
    pub pitch: i64,
}

/// A via layer between metal `index` and `index + 1`, identified by the
/// lower metal's index. "Split layer 6" in the paper means cutting at via
/// layer V6, separating M6 (FEOL) from M7 (BEOL).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SplitLayer(u8);

impl SplitLayer {
    /// Creates a split layer, validating it against a 9-metal stack.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::InvalidSplitLayer`] unless `1 <= v <= 8`.
    ///
    /// # Examples
    ///
    /// ```
    /// use sm_layout::tech::SplitLayer;
    ///
    /// let split = SplitLayer::new(6)?;
    /// assert_eq!(split.via_index(), 6);
    /// assert_eq!(split.lowest_beol_metal(), 7);
    /// # Ok::<(), sm_layout::error::LayoutError>(())
    /// ```
    pub fn new(v: u8) -> Result<Self, LayoutError> {
        if (1..=8).contains(&v) {
            Ok(Self(v))
        } else {
            Err(LayoutError::InvalidSplitLayer(v))
        }
    }

    /// The via layer index (1-based).
    pub fn via_index(self) -> u8 {
        self.0
    }

    /// Highest metal layer visible to the untrusted foundry (FEOL).
    pub fn highest_feol_metal(self) -> u8 {
        self.0
    }

    /// Lowest metal layer hidden from the untrusted foundry (BEOL).
    pub fn lowest_beol_metal(self) -> u8 {
        self.0 + 1
    }
}

impl std::fmt::Display for SplitLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "V{}", self.0)
    }
}

/// The full metal stack of the synthetic process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Technology {
    layers: Vec<MetalLayer>,
    /// Side of the square g-cells used for congestion accounting, in DBU.
    gcell: i64,
}

impl Technology {
    /// The 9-metal-layer technology matching the ISPD-2011 setup: odd layers
    /// horizontal (so M9, the top layer, is horizontal), 4× wire-width ramp
    /// from the bottom pair to the top pair.
    ///
    /// # Examples
    ///
    /// ```
    /// use sm_layout::tech::{Direction, Technology};
    ///
    /// let tech = Technology::ispd9();
    /// assert_eq!(tech.num_metal_layers(), 9);
    /// assert_eq!(tech.metal(9).direction, Direction::Horizontal);
    /// assert_eq!(tech.metal(9).width / tech.metal(1).width, 4);
    /// ```
    pub fn ispd9() -> Self {
        // Width ramp in 4 steps of 2 layers each (M9 shares the widest class):
        // M1-2: 1x, M3-4: 1.5x, M5-6: 2x, M7-9: 4x. Pitch = 2 * width.
        const BASE: i64 = 70;
        let width_of = |m: u8| -> i64 {
            match m {
                1 | 2 => BASE,
                3 | 4 => BASE * 3 / 2,
                5 | 6 => BASE * 2,
                _ => BASE * 4,
            }
        };
        let layers = (1..=9)
            .map(|m| MetalLayer {
                index: m,
                direction: if m % 2 == 1 {
                    Direction::Horizontal
                } else {
                    Direction::Vertical
                },
                width: width_of(m),
                pitch: 2 * width_of(m),
            })
            .collect();
        Self {
            layers,
            gcell: 3_500,
        }
    }

    /// Number of metal layers.
    pub fn num_metal_layers(&self) -> u8 {
        self.layers.len() as u8
    }

    /// Number of via layers (metal layers − 1).
    pub fn num_via_layers(&self) -> u8 {
        self.num_metal_layers() - 1
    }

    /// Metal layer `m` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `m` is 0 or exceeds the stack height.
    pub fn metal(&self, m: u8) -> &MetalLayer {
        assert!(
            m >= 1 && m <= self.num_metal_layers(),
            "metal layer M{m} out of range"
        );
        &self.layers[(m - 1) as usize]
    }

    /// All metal layers, bottom-up.
    pub fn metals(&self) -> &[MetalLayer] {
        &self.layers
    }

    /// Side of the congestion g-cell in DBU.
    pub fn gcell_size(&self) -> i64 {
        self.gcell
    }

    /// Routing track capacity of one g-cell on layer `m`: how many wires of
    /// that layer's pitch fit through a g-cell. Upper layers have fewer,
    /// wider tracks — this is what concentrates congestion in the lower
    /// layers of realistic designs.
    pub fn gcell_capacity(&self, m: u8) -> u32 {
        (self.gcell / self.metal(m).pitch).max(1) as u32
    }

    /// Valid split layers for this stack.
    pub fn split_layers(&self) -> impl Iterator<Item = SplitLayer> + '_ {
        (1..=self.num_via_layers()).map(|v| SplitLayer::new(v).expect("stack-derived index"))
    }
}

impl Default for Technology {
    fn default() -> Self {
        Self::ispd9()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directions_alternate_with_m9_horizontal() {
        let t = Technology::ispd9();
        for m in 1..=9u8 {
            let expect = if m % 2 == 1 {
                Direction::Horizontal
            } else {
                Direction::Vertical
            };
            assert_eq!(t.metal(m).direction, expect, "M{m}");
        }
        assert_eq!(t.metal(9).direction, Direction::Horizontal);
        assert_eq!(t.metal(8).direction, Direction::Vertical);
    }

    #[test]
    fn width_ramp_is_4x_and_monotone() {
        let t = Technology::ispd9();
        assert_eq!(t.metal(9).width, 4 * t.metal(1).width);
        for m in 1..9u8 {
            assert!(t.metal(m + 1).width >= t.metal(m).width);
        }
    }

    #[test]
    fn upper_layers_have_fewer_tracks() {
        let t = Technology::ispd9();
        assert!(t.gcell_capacity(1) > t.gcell_capacity(9));
        assert_eq!(t.gcell_capacity(1), (3_500 / 140) as u32);
    }

    #[test]
    fn split_layer_validation() {
        assert!(SplitLayer::new(0).is_err());
        assert!(SplitLayer::new(9).is_err());
        let s = SplitLayer::new(8).expect("valid");
        assert_eq!(s.highest_feol_metal(), 8);
        assert_eq!(s.lowest_beol_metal(), 9);
        assert_eq!(s.to_string(), "V8");
    }

    #[test]
    fn split_layers_iterator_covers_stack() {
        let t = Technology::ispd9();
        let all: Vec<_> = t.split_layers().collect();
        assert_eq!(all.len(), 8);
        assert_eq!(all[0].via_index(), 1);
        assert_eq!(all[7].via_index(), 8);
    }

    #[test]
    fn direction_flip_roundtrips() {
        assert_eq!(
            Direction::Horizontal.flipped().flipped(),
            Direction::Horizontal
        );
    }
}
