//! Serde round-trips for the layout data structures (challenge caching
//! between pipeline stages; `serde_json` is a dev-dependency exercising
//! the derives).

use sm_layout::generator::DesignSpec;
use sm_layout::geom::{Grid, Point, Rect};
use sm_layout::split::SplitView;
use sm_layout::suite::Suite;
use sm_layout::tech::{SplitLayer, Technology};

#[test]
fn geometry_roundtrips() {
    let p = Point::new(-3, 99);
    let back: Point = serde_json::from_str(&serde_json::to_string(&p).expect("ser")).expect("de");
    assert_eq!(p, back);

    let r = Rect::with_size(1000, 500);
    let back: Rect = serde_json::from_str(&serde_json::to_string(&r).expect("ser")).expect("de");
    assert_eq!(r, back);

    let g = Grid::new(r, 100);
    let back: Grid = serde_json::from_str(&serde_json::to_string(&g).expect("ser")).expect("de");
    assert_eq!(g, back);
}

#[test]
fn technology_roundtrips() {
    let t = Technology::ispd9();
    let back: Technology =
        serde_json::from_str(&serde_json::to_string(&t).expect("ser")).expect("de");
    assert_eq!(t, back);
    assert_eq!(back.gcell_capacity(9), t.gcell_capacity(9));
}

#[test]
fn design_spec_roundtrips() {
    let spec = Suite::spec_sb12_scaled(0.1);
    let back: DesignSpec =
        serde_json::from_str(&serde_json::to_string(&spec).expect("ser")).expect("de");
    assert_eq!(spec, back);
    back.validate().expect("restored spec still valid");
}

#[test]
fn split_view_roundtrips_with_truth_intact() {
    let view = Suite::ispd2011_like(0.01)
        .expect("suite")
        .split_all(SplitLayer::new(6).expect("valid"))
        .remove(0);
    let back: SplitView =
        serde_json::from_str(&serde_json::to_string(&view).expect("ser")).expect("de");
    assert_eq!(back.num_vpins(), view.num_vpins());
    for i in 0..view.num_vpins() {
        assert_eq!(back.vpins()[i], view.vpins()[i]);
        assert_eq!(back.true_match(i), view.true_match(i));
        assert_eq!(back.net_of(i), view.net_of(i));
    }
}
