//! Property-based tests of the layout substrate's geometric and
//! structural invariants.

use proptest::prelude::*;
use sm_layout::congestion::DensityMap;
use sm_layout::geom::{hpwl, Grid, Point, Rect};

fn arb_point() -> impl Strategy<Value = Point> {
    (-1_000_000i64..1_000_000, -1_000_000i64..1_000_000).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn manhattan_is_a_metric(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert_eq!(a.manhattan(b), b.manhattan(a));
        prop_assert_eq!(a.manhattan(a), 0);
        prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
        prop_assert!(a.manhattan(b) >= 0);
    }

    #[test]
    fn min_max_bound_the_inputs(a in arb_point(), b in arb_point()) {
        let lo = a.min(b);
        let hi = a.max(b);
        prop_assert!(lo.x <= a.x && lo.x <= b.x);
        prop_assert!(hi.y >= a.y && hi.y >= b.y);
        prop_assert_eq!(lo.manhattan(hi), a.manhattan(b));
    }

    #[test]
    fn hpwl_lower_bounds_any_pairwise_distance(pts in prop::collection::vec(arb_point(), 2..20)) {
        let h = hpwl(&pts);
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                prop_assert!(pts[i].manhattan(pts[j]) <= h,
                    "pairwise distance exceeds HPWL");
            }
        }
    }

    #[test]
    fn hpwl_is_translation_invariant(pts in prop::collection::vec(arb_point(), 2..20),
                                     dx in -10_000i64..10_000, dy in -10_000i64..10_000) {
        let shifted: Vec<Point> =
            pts.iter().map(|p| Point::new(p.x + dx, p.y + dy)).collect();
        prop_assert_eq!(hpwl(&pts), hpwl(&shifted));
    }

    #[test]
    fn rect_clamp_is_idempotent_and_contained(
        w in 1i64..1_000_000, h in 1i64..1_000_000, p in arb_point()
    ) {
        let r = Rect::with_size(w, h);
        let q = r.clamp(p);
        prop_assert!(r.contains(q));
        prop_assert_eq!(r.clamp(q), q);
        if r.contains(p) {
            prop_assert_eq!(q, p);
        }
    }

    #[test]
    fn grid_locate_is_within_range_and_stable(
        w in 10i64..500_000, h in 10i64..500_000, cell in 1i64..50_000, p in arb_point()
    ) {
        let g = Grid::new(Rect::with_size(w, h), cell);
        let (ix, iy) = g.locate(p);
        prop_assert!(ix < g.nx() && iy < g.ny());
        prop_assert!(g.flat(ix, iy) < g.len());
        // Window of radius 0 is exactly the containing cell.
        let win: Vec<usize> = g.window(p, 0).collect();
        prop_assert_eq!(win, vec![g.flat(ix, iy)]);
    }

    #[test]
    fn grid_window_grows_with_radius(
        w in 100i64..500_000, h in 100i64..500_000, cell in 1i64..50_000,
        p in arb_point(), r1 in 0usize..4, dr in 0usize..4
    ) {
        let g = Grid::new(Rect::with_size(w, h), cell);
        let small = g.window(p, r1).count();
        let large = g.window(p, r1 + dr).count();
        prop_assert!(large >= small);
        prop_assert!(large <= (2 * (r1 + dr) + 1).pow(2));
    }

    #[test]
    fn density_map_conserves_mass(points in prop::collection::vec(arb_point(), 0..200)) {
        let bounds = Rect::with_size(1_000_000, 1_000_000);
        let map = DensityMap::from_points(
            bounds, 100_000,
            points.iter().map(|p| Point::new(p.x.abs(), p.y.abs())),
        );
        prop_assert_eq!(map.total(), points.len() as u64);
        // Full-grid window over the centre counts everything.
        let all = map.window_count(bounds.center(), 10);
        prop_assert_eq!(u64::from(all), points.len() as u64);
    }
}

mod design_invariants {
    use super::*;
    use sm_layout::generator::generate;
    use sm_layout::route::route;
    use sm_layout::split::SplitView;
    use sm_layout::suite::Suite;
    use sm_layout::tech::SplitLayer;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// For arbitrary seeds, the generated design upholds its structural
        /// invariants at every split layer.
        #[test]
        fn split_views_are_well_formed_for_any_seed(seed in 0u64..1_000_000) {
            let mut spec = Suite::spec_sb18_scaled(0.004);
            spec.seed = seed;
            let routed = route(generate(&spec).expect("valid spec"));
            for layer in [4u8, 6, 8] {
                let view = SplitView::cut(&routed, SplitLayer::new(layer).expect("valid"));
                prop_assert_eq!(view.num_vpins() % 2, 0);
                for i in 0..view.num_vpins() {
                    let m = view.true_match(i);
                    prop_assert_eq!(view.true_match(m), i);
                    prop_assert!(view.is_legal_pair(i, m));
                    let vp = &view.vpins()[i];
                    prop_assert!(vp.wirelength >= 0);
                    prop_assert!(vp.in_area + vp.out_area > 0);
                }
            }
        }
    }
}
