//! Split-layer selection study: the decision the paper's results inform.
//!
//! A design house choosing where to split its layout between the untrusted
//! and trusted foundries wants the *lowest* attack effectiveness at an
//! acceptable manufacturing cost (lower splits are costlier for the
//! trusted foundry). This example runs the attack at every candidate split
//! layer and reports the security each choice buys.
//!
//! ```bash
//! cargo run --release --example split_layer_selection
//! ```

use splitmfg::attack::attack::{AttackConfig, ScoreOptions};
use splitmfg::attack::loc::LocCurve;
use splitmfg::attack::xval::leave_one_out;
use splitmfg::layout::{SplitLayer, Suite};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = Suite::ispd2011_like(0.1)?;
    let config = AttackConfig::imp11();

    println!(
        "Attack effectiveness per candidate split layer ({}):\n",
        config.name
    );
    println!(
        "{:<8} {:>9} {:>16} {:>16} {:>14}",
        "split", "#v-pins", "acc @ |LoC|=10", "|LoC| @ 90% acc", "attack time"
    );
    for layer in [4u8, 5, 6, 7, 8] {
        let split = SplitLayer::new(layer)?;
        let views = suite.split_all(split);
        let total: usize = views.iter().map(|v| v.num_vpins()).sum();
        let t = std::time::Instant::now();
        let folds = leave_one_out(&config, &views, &ScoreOptions::default())?;
        let elapsed = t.elapsed();
        let scored: Vec<_> = folds.into_iter().map(|f| f.scored).collect();
        let curve = LocCurve::from_views(&scored);
        let acc10 = curve
            .max_accuracy_at_loc(10.0)
            .map_or("—".to_owned(), |p| format!("{:.1}%", 100.0 * p.accuracy));
        let loc90 = curve
            .min_loc_at_accuracy(0.9)
            .map_or("—".to_owned(), |p| format!("{:.1}", p.mean_loc));
        println!(
            "{:<8} {:>9} {:>16} {:>16} {:>14}",
            format!("V{layer}"),
            total,
            acc10,
            loc90,
            format!("{:.1?}", elapsed)
        );
    }
    println!(
        "\nLower split layers expose more broken nets but each is far harder to\n\
         match — the defender's trade-off the paper quantifies (Table IV)."
    );
    Ok(())
}
