//! The defender's counter-move: y-coordinate obfuscation (paper Section
//! III-I). Shows how little routing perturbation is needed to knock the
//! attack down, and that 2% noise buys little over 1%.
//!
//! ```bash
//! cargo run --release --example obfuscation_defense
//! ```

use splitmfg::attack::attack::{AttackConfig, ScoreOptions};
use splitmfg::attack::loc::LocCurve;
use splitmfg::attack::obfuscate::obfuscate_views;
use splitmfg::attack::xval::leave_one_out;
use splitmfg::layout::{SplitLayer, Suite};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = Suite::ispd2011_like(0.1)?;
    let clean = suite.split_all(SplitLayer::new(6)?);
    let config = AttackConfig::imp11();

    println!("Attack accuracy at fixed LoC fractions, with obfuscation noise on v-pin y:\n");
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "noise SD", "LoC 0.1%", "LoC 1%", "LoC 10%"
    );
    for sd in [0.0, 0.005, 0.01, 0.02] {
        let views = if sd == 0.0 {
            clean.clone()
        } else {
            obfuscate_views(&clean, sd, 5)
        };
        let folds = leave_one_out(&config, &views, &ScoreOptions::default())?;
        let scored: Vec<_> = folds.into_iter().map(|f| f.scored).collect();
        let curve = LocCurve::from_views(&scored);
        let cell = |f: f64| {
            curve
                .accuracy_at_loc_fraction(f)
                .map_or("—".to_owned(), |a| format!("{:.1}%", 100.0 * a))
        };
        println!(
            "{:<10} {:>12} {:>12} {:>12}",
            format!("{:.1}%", sd * 100.0),
            cell(0.001),
            cell(0.01),
            cell(0.1)
        );
    }
    println!(
        "\nA ~1% routing perturbation on the two most important features\n\
         (DiffVpinY, ManhattanVpin) already costs the attacker a large share\n\
         of accuracy; stronger noise changes little (paper Fig. 10, Table VI)."
    );
    Ok(())
}
