//! Quickstart: generate a benchmark, cut it at a split layer, train the
//! ML attack on the other designs, and inspect the list of candidates.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use splitmfg::attack::attack::{AttackConfig, ScoreOptions, TrainedAttack};
use splitmfg::layout::{SplitLayer, Suite};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 1/10-size suite keeps this example under a few seconds.
    let suite = Suite::ispd2011_like(0.1)?;
    let split = SplitLayer::new(8)?;
    println!("Cutting the five designs at split layer {split} (between M8 and M9)...");
    let views = suite.split_all(split);
    for v in &views {
        println!("  {:<5} {:>6} v-pins", v.name, v.num_vpins());
    }

    // Attack sb1 with a model trained on the other four designs
    // (leave-one-out, as an untrusted foundry with historical layouts).
    let target = &views[0];
    let training: Vec<_> = views[1..].iter().collect();
    let config = AttackConfig::imp11();
    println!(
        "\nTraining {} on {} designs...",
        config.name,
        training.len()
    );
    let model = TrainedAttack::train(&config, &training, None)?;
    println!(
        "  {} training samples, neighborhood radius {:?} DBU",
        model.num_training_samples(),
        model.radius()
    );

    println!("\nScoring every candidate v-pin pair of {}...", target.name);
    let scored = model.score(target, &ScoreOptions::default());
    println!("  {} pairs evaluated", scored.pairs_scored);

    // The attacker controls the LoC size through the ensemble threshold.
    for t in [0.9, 0.5, 0.1] {
        println!(
            "  threshold {t:.1}: mean |LoC| = {:>6.2}, accuracy = {:>6.2}%",
            scored.mean_loc_at(t),
            100.0 * scored.accuracy_at(t)
        );
    }

    // Or asks the trade-off curve for an operating point directly.
    let curve = scored.curve();
    if let Some(pt) = curve.min_loc_at_accuracy(0.95) {
        println!(
            "\nTo keep 95% of true matches, the attacker needs only {:.1} candidates per broken net.",
            pt.mean_loc
        );
    }
    Ok(())
}
