//! Full proximity-attack pipeline: validated PA-LoC sizing, attack, and a
//! comparison against the naive fixed-threshold variant and the prior
//! work's nearest-in-window attack.
//!
//! ```bash
//! cargo run --release --example proximity_attack
//! ```

use splitmfg::attack::attack::{AttackConfig, ScoreOptions, TrainedAttack};
use splitmfg::attack::baseline::PriorWorkModel;
use splitmfg::attack::proximity::{
    pa_at_threshold, proximity_attack, validate_pa_fraction, DEFAULT_PA_FRACTIONS,
};
use splitmfg::layout::{SplitLayer, Suite};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = Suite::ispd2011_like(0.1)?;
    let views = suite.split_all(SplitLayer::new(8)?);
    let target = &views[0];
    let training: Vec<_> = views[1..].iter().collect();
    let config = AttackConfig::imp9().with_y_limit();

    // Step 1: choose the PA-LoC fraction on held-out training v-pins.
    println!("Validating PA-LoC fractions on the training designs...");
    let validation = validate_pa_fraction(&config, &training, &DEFAULT_PA_FRACTIONS, 7)?;
    for (fraction, rate) in &validation.rates {
        println!(
            "  fraction {:>6.3}%: validation success {:>6.2}%",
            100.0 * fraction,
            100.0 * rate
        );
    }
    println!(
        "  -> selected fraction {:.3}%",
        100.0 * validation.best_fraction
    );

    // Step 2: train on the full N-1 designs and attack the target.
    let model = TrainedAttack::train(&config, &training, None)?;
    let scored = model.score(target, &ScoreOptions::default());

    let validated = proximity_attack(&scored, target, validation.best_fraction, 11);
    let fixed = pa_at_threshold(&scored, target, 0.5, 13);
    println!(
        "\nProximity attack on {} ({} v-pins):",
        target.name,
        target.num_vpins()
    );
    println!("  validated PA-LoC : {validated}");
    println!("  fixed t=0.5 [18] : {fixed}");

    // Step 3: the prior work's attack for scale.
    let refs: Vec<_> = views.iter().collect();
    let prior = PriorWorkModel::fit(&refs);
    let prior_result = prior.evaluate(target, 1.5);
    println!("  prior work [5]   : {:.2}%", 100.0 * prior_result.pa_rate);
    Ok(())
}
