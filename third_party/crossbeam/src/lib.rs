//! Offline shim for the `crossbeam` scoped-thread API used by this
//! workspace, backed by `std::thread::scope` (stable since Rust 1.63).
//!
//! Only `crossbeam::thread::scope` / `Scope::spawn` / join are provided —
//! exactly the surface the attack engine's deterministic parallel layer
//! uses. Semantics match crossbeam's: `spawn` closures receive a `&Scope`
//! so workers can spawn siblings, and `scope` returns a `Result` (always
//! `Ok` here; a panicking worker propagates its panic at the end of the
//! scope, as with `std::thread::scope`).

pub mod thread {
    /// Scope handle passed to [`scope`] closures and workers.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` if it
        /// panicked).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a worker inside the scope. The closure receives the
        /// scope so it can spawn further siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; all are joined before `scope` returns.
    ///
    /// # Errors
    ///
    /// Never returns `Err` (kept for crossbeam signature compatibility);
    /// worker panics propagate as panics.
    #[allow(clippy::missing_panics_doc)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let mid = data.len() / 2;
            let (a, b) = data.split_at(mid);
            let ha = s.spawn(move |_| a.iter().sum::<u64>());
            let hb = s.spawn(move |_| b.iter().sum::<u64>());
            ha.join().expect("a") + hb.join().expect("b")
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn workers_can_spawn_siblings() {
        let n = crate::thread::scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21u32);
                inner.join().expect("inner") * 2
            });
            h.join().expect("outer")
        })
        .expect("scope");
        assert_eq!(n, 42);
    }
}
