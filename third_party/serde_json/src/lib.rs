//! Offline JSON serializer/deserializer over the workspace's value-tree
//! serde. Provides the `to_string` / `to_string_pretty` / `from_str`
//! entry points the workspace uses.
//!
//! Float fidelity: finite `f64`s print via Rust's `Display`, whose
//! shortest-roundtrip guarantee makes `to_string` → `from_str` exact
//! bit-for-bit. A printed float that would look like an integer (e.g.
//! `1.0` → `"1"`) gets a `.0` suffix so it parses back as a float.
//! Non-finite floats print as `null` (JSON has no representation),
//! matching `serde_json`'s lossy behaviour.

use serde::{DeError, Deserialize, Serialize, Value};

/// JSON encode/decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Self::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible in practice (kept `Result` for serde_json signature
/// compatibility).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to compact JSON into a caller-provided buffer
/// (cleared first) — the buffer-reusing variant of [`to_string`] for hot
/// request loops that serialize once per request.
///
/// # Errors
///
/// Infallible in practice (kept `Result` for serde_json signature
/// compatibility).
pub fn to_string_buf<T: Serialize + ?Sized>(value: &T, out: &mut String) -> Result<(), Error> {
    out.clear();
    write_value(&value.to_value(), out, None, 0);
    Ok(())
}

/// Serializes a value to 2-space-indented JSON.
///
/// # Errors
///
/// Infallible in practice (kept `Result` for serde_json signature
/// compatibility).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserializes a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or when the parsed tree doesn't
/// match `T`'s shape.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => write_block(out, indent, level, '[', ']', items.len(), |out, k| {
            write_value(&items[k], out, indent, level + 1);
        }),
        Value::Map(entries) => {
            write_block(out, indent, level, '{', '}', entries.len(), |out, k| {
                let (key, val) = &entries[k];
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, level + 1);
            })
        }
    }
}

fn write_block(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for k in 0..len {
        if k > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (level + 1)));
        }
        write_item(out, k);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * level));
    }
    out.push(close);
}

fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = f.to_string();
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != b {
            return Err(Error::new(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.eat_keyword("null").map(|()| Value::Null),
            b't' => self.eat_keyword("true").map(|()| Value::Bool(true)),
            b'f' => self.eat_keyword("false").map(|()| Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.seq(),
            b'{' => self.map(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}, found `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}, found `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.bytes.get(self.pos), None | Some(b'"' | b'\\')) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.bytes.get(self.pos) {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => unreachable!("scan loop stops only at quote or backslash"),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), Error> {
        let c = self
            .bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0c}'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xd800..0xdc00).contains(&hi) {
                    // Surrogate pair: require \uXXXX low surrogate.
                    if self.bytes.get(self.pos) != Some(&b'\\')
                        || self.bytes.get(self.pos + 1) != Some(&b'u')
                    {
                        return Err(Error::new("unpaired surrogate in \\u escape"));
                    }
                    self.pos += 2;
                    let lo = self.hex4()?;
                    if !(0xdc00..0xe000).contains(&lo) {
                        return Err(Error::new("invalid low surrogate in \\u escape"));
                    }
                    0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                } else {
                    hi
                };
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| Error::new("invalid \\u escape code point"))?,
                );
            }
            other => {
                return Err(Error::new(format!("invalid escape `\\{}`", other as char)));
            }
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        self.pos += 4;
        let s = std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?;
        u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid float `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid integer `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&true).expect("ser"), "true");
        assert!(from_str::<bool>("true").expect("de"));
        assert_eq!(to_string(&42u64).expect("ser"), "42");
        assert_eq!(from_str::<i64>("-7").expect("de"), -7);
        assert_eq!(to_string(&1.0f64).expect("ser"), "1.0");
        assert_eq!(from_str::<f64>("1.0").expect("de"), 1.0);
    }

    #[test]
    fn float_text_is_exact() {
        for &f in &[0.1, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, -0.0, 2.5e-300] {
            let s = to_string(&f).expect("ser");
            let back: f64 = from_str(&s).expect("de");
            assert_eq!(back.to_bits(), f.to_bits(), "through {s}");
        }
    }

    #[test]
    fn nonfinite_prints_null() {
        assert_eq!(to_string(&f64::NAN).expect("ser"), "null");
        assert_eq!(to_string(&f64::INFINITY).expect("ser"), "null");
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "a\"b\\c\nd\té \u{1}\u{1F600}".to_string();
        let j = to_string(&s).expect("ser");
        assert_eq!(from_str::<String>(&j).expect("de"), s);
        // Explicit \u escapes, including a surrogate pair.
        assert_eq!(
            from_str::<String>("\"A\\u00e9\\ud83d\\ude00\"").expect("de"),
            "Aé\u{1F600}"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let j = to_string(&v).expect("ser");
        assert_eq!(j, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&j).expect("de"), v);

        let pairs: Vec<(f64, f64)> = vec![(0.5, 1.5), (2.0, 3.25)];
        let j = to_string(&pairs).expect("ser");
        assert_eq!(from_str::<Vec<(f64, f64)>>(&j).expect("de"), pairs);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Vec<Vec<u8>> = vec![vec![1, 2], vec![], vec![3]];
        let pretty = to_string_pretty(&v).expect("ser");
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u8>>>(&pretty).expect("de"), v);
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(
            from_str::<Vec<u32>>(" [ 1 , 2 ,\n\t3 ] ").expect("de"),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        assert!(from_str::<bool>("truth").is_err());
    }
}
