//! End-to-end checks of the hand-written derive macros through JSON,
//! mirroring every type shape the workspace serializes.

use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Named {
    pub id: u32,
    pub weight: f64,
    pub label: String,
    pub maybe: Option<i64>,
    pub coords: Vec<(f64, f64)>,
    pub fixed: [f64; 3],
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Newtype(pub u32);

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Private(u8);

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pair(pub i64, pub f64);

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnitEnum {
    North = 0,
    East = 1,
    South = 5,
    West,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Mixed {
    Nothing,
    Z { mid: i64 },
    Tree { depth: u32, trees: u32 },
    One(f64),
    Two(u8, String),
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Nested {
    pub kind: UnitEnum,
    pub shape: Mixed,
    pub cell: Newtype,
    pub layers: Vec<Private>,
}

fn roundtrip<T>(x: &T) -> T
where
    T: Serialize + Deserialize + std::fmt::Debug,
{
    let json = serde_json::to_string(x).expect("serialize");
    serde_json::from_str(&json).unwrap_or_else(|e| panic!("deserialize {json}: {e}"))
}

#[test]
fn named_struct_roundtrips() {
    let x = Named {
        id: 7,
        weight: 0.1,
        label: "sb\"1\"".to_string(),
        maybe: None,
        coords: vec![(1.5, -2.0), (0.0, 1.0 / 3.0)],
        fixed: [0.25, 0.5, 0.75],
    };
    assert_eq!(roundtrip(&x), x);
    let with_some = Named {
        maybe: Some(-42),
        ..x
    };
    assert_eq!(roundtrip(&with_some), with_some);
}

#[test]
fn newtype_is_transparent() {
    assert_eq!(serde_json::to_string(&Newtype(9)).expect("ser"), "9");
    assert_eq!(roundtrip(&Newtype(u32::MAX)), Newtype(u32::MAX));
    assert_eq!(roundtrip(&Private(3)), Private(3));
}

#[test]
fn tuple_struct_is_a_sequence() {
    assert_eq!(
        serde_json::to_string(&Pair(-1, 2.5)).expect("ser"),
        "[-1,2.5]"
    );
    assert_eq!(roundtrip(&Pair(i64::MIN, 0.1)), Pair(i64::MIN, 0.1));
}

#[test]
fn unit_enum_uses_variant_names() {
    assert_eq!(
        serde_json::to_string(&UnitEnum::South).expect("ser"),
        "\"South\""
    );
    for v in [
        UnitEnum::North,
        UnitEnum::East,
        UnitEnum::South,
        UnitEnum::West,
    ] {
        assert_eq!(roundtrip(&v), v);
    }
    assert!(serde_json::from_str::<UnitEnum>("\"Up\"").is_err());
}

#[test]
fn data_enum_is_externally_tagged() {
    assert_eq!(
        serde_json::to_string(&Mixed::Z { mid: -5 }).expect("ser"),
        "{\"Z\":{\"mid\":-5}}"
    );
    assert_eq!(
        serde_json::to_string(&Mixed::One(1.5)).expect("ser"),
        "{\"One\":1.5}"
    );
    for v in [
        Mixed::Nothing,
        Mixed::Z { mid: i64::MAX },
        Mixed::Tree {
            depth: 12,
            trees: 100,
        },
        Mixed::One(0.1),
        Mixed::Two(8, "x".to_string()),
    ] {
        assert_eq!(roundtrip(&v), v);
    }
}

#[test]
fn nested_composition_roundtrips() {
    let x = Nested {
        kind: UnitEnum::West,
        shape: Mixed::Tree { depth: 3, trees: 9 },
        cell: Newtype(11),
        layers: vec![Private(1), Private(2)],
    };
    assert_eq!(roundtrip(&x), x);
    let pretty = serde_json::to_string_pretty(&x).expect("ser");
    assert_eq!(serde_json::from_str::<Nested>(&pretty).expect("de"), x);
}
