//! Offline serialization framework presenting the `serde` surface this
//! workspace uses: `Serialize` / `Deserialize` traits and
//! `#[derive(Serialize, Deserialize)]` (via the sibling `serde_derive`
//! proc-macro, re-exported under the `derive` feature).
//!
//! Unlike real serde's visitor architecture, this implementation routes
//! everything through an owned [`Value`] tree — dramatically simpler, and
//! exactly what the workspace's `serde_json`-style round-trips need.
//! Integers ride in an `i128` so every `u64`/`i64` survives losslessly;
//! floats keep their exact bits through the tree (text fidelity is the
//! printer's job — see the `serde_json` stub).

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / `Option::None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Any integer (wide enough for `u64` and `i64`).
    Int(i128),
    /// Binary floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence (arrays, `Vec`, tuples, tuple structs).
    Seq(Vec<Value>),
    /// Ordered map (structs, enum variant wrappers).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// A one-word description used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Builds an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// "expected X while deserializing Y, found Z"-style error.
    pub fn expected(what: &str, context: &str, found: &Value) -> Self {
        Self {
            msg: format!("expected {what} for {context}, found {}", found.kind()),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree's shape or ranges don't match.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up a struct field in a map, treating a missing key as `null`
/// (which lets `Option` fields tolerate elision).
pub fn field<'v>(map: &'v [(String, Value)], key: &str) -> &'v Value {
    static NULL: Value = Value::Null;
    map.iter().find(|(k, _)| k == key).map_or(&NULL, |(_, v)| v)
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::custom(format!(
                            "integer {i} out of range for {}", stringify!($t)))),
                    other => Err(DeError::expected("integer", stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(DeError::expected("number", stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_float!(f64);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f as f32),
            Value::Int(i) => Ok(*i as f32),
            other => Err(DeError::expected("number", "f32", other)),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", "bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", "String", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(DeError::expected("single-char string", "char", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("sequence", "Vec", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let seq = v
            .as_seq()
            .ok_or_else(|| DeError::expected("sequence", "array", v))?;
        if seq.len() != N {
            return Err(DeError::custom(format!(
                "expected array of length {N}, found {}",
                seq.len()
            )));
        }
        let items: Result<Vec<T>, DeError> = seq.iter().map(T::from_value).collect();
        items?
            .try_into()
            .map_err(|_| DeError::custom("array length mismatch after collection"))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let seq = v.as_seq().ok_or_else(|| DeError::expected("sequence", "tuple", v))?;
                let expect = [$($idx),+].len();
                if seq.len() != expect {
                    return Err(DeError::custom(format!(
                        "expected tuple of length {expect}, found {}", seq.len())));
                }
                Ok(($($name::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(
            u64::from_value(&u64::MAX.to_value()).expect("u64"),
            u64::MAX
        );
        assert_eq!(
            i64::from_value(&i64::MIN.to_value()).expect("i64"),
            i64::MIN
        );
        assert_eq!(f64::from_value(&0.1f64.to_value()).expect("f64"), 0.1);
        assert!(bool::from_value(&true.to_value()).expect("bool"));
        assert_eq!(
            String::from_value(&"hé\"llo".to_string().to_value()).expect("string"),
            "hé\"llo"
        );
    }

    #[test]
    fn out_of_range_integer_fails() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        assert_eq!(
            Vec::<Option<u32>>::from_value(&v.to_value()).expect("vec"),
            v
        );
        let t = (1.5f64, 2.5f64);
        assert_eq!(<(f64, f64)>::from_value(&t.to_value()).expect("tuple"), t);
        let a = [0.1f64, 0.2, 0.3];
        assert_eq!(<[f64; 3]>::from_value(&a.to_value()).expect("array"), a);
        assert!(<[f64; 4]>::from_value(&a.to_value()).is_err());
    }

    #[test]
    fn field_lookup_defaults_to_null() {
        let m = vec![("a".to_string(), Value::Int(1))];
        assert_eq!(field(&m, "a"), &Value::Int(1));
        assert_eq!(field(&m, "b"), &Value::Null);
    }
}
