//! Offline `#[derive(Serialize, Deserialize)]` implementation built on the
//! bare `proc_macro` API — no `syn`/`quote`, since those aren't available
//! offline either. It hand-parses the item's token stream into a small IR
//! (named struct / tuple struct / enum) and emits the trait impls as
//! formatted source strings re-parsed into a `TokenStream`.
//!
//! Supported shapes, matching everything this workspace derives:
//! - structs with named fields (any field types that implement the traits)
//! - tuple structs (newtypes serialize transparently; wider ones as a
//!   sequence)
//! - enums with unit variants (including explicit discriminants), named
//!   field variants, and tuple variants, using serde's externally-tagged
//!   representation: `"Variant"` for unit, `{"Variant": payload}` for data
//!
//! Generics and `#[serde(...)]` attributes are not supported (the
//! workspace uses neither).

// Generated source strings end lines with an explicit `\n` so the emitted
// code stays readable when debugged; `writeln!` would obscure that every
// newline is part of the generated text.
#![allow(clippy::write_with_newline)]

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Derives the workspace `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives the workspace `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kw = expect_ident(&toks, &mut i, "`struct` or `enum`");
    let name = expect_ident(&toks, &mut i, "item name");
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize/Deserialize): generic item `{name}` is not supported");
    }
    match (kw.as_str(), toks.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Item::TupleStruct {
                name,
                arity: count_tuple_fields(g.stream()),
            }
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => Item::Enum {
            name,
            variants: parse_variants(g.stream()),
        },
        _ => panic!("derive(Serialize/Deserialize): unsupported item shape for `{name}`"),
    }
}

fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#')
        && matches!(toks.get(*i + 1), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
    {
        *i += 2;
    }
}

fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize, what: &str) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("derive(Serialize/Deserialize): expected {what}, found {other:?}"),
    }
}

/// Advances past one field's type (or an enum discriminant expression):
/// everything up to the next `,` at angle-bracket depth zero.
fn skip_to_comma(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        fields.push(expect_ident(&toks, &mut i, "field name"));
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                panic!("derive(Serialize/Deserialize): expected `:` after field, found {other:?}")
            }
        }
        skip_to_comma(&toks, &mut i);
        i += 1; // past the comma (or off the end)
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut arity = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        arity += 1;
        skip_to_comma(&toks, &mut i);
        i += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i, "variant name");
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            skip_to_comma(&toks, &mut i); // discriminant expression, ignored
        }
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let mut s = String::new();
    match item {
        Item::NamedStruct { name, fields } => {
            let _ = write!(
                s,
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Map(vec![\n"
            );
            for f in fields {
                let _ = write!(
                    s,
                    "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),\n"
                );
            }
            s.push_str("])\n}\n}\n");
        }
        Item::TupleStruct { name, arity } => {
            let _ = write!(
                s,
                "impl ::serde::Serialize for {name} {{\nfn to_value(&self) -> ::serde::Value {{\n"
            );
            if *arity == 1 {
                s.push_str("::serde::Serialize::to_value(&self.0)\n");
            } else {
                s.push_str("::serde::Value::Seq(vec![\n");
                for k in 0..*arity {
                    let _ = write!(s, "::serde::Serialize::to_value(&self.{k}),\n");
                }
                s.push_str("])\n");
            }
            s.push_str("}\n}\n");
        }
        Item::Enum { name, variants } => {
            let _ = write!(
                s,
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n"
            );
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            s,
                            "Self::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                        );
                    }
                    VariantKind::Named(fields) => {
                        let binds = fields.join(", ");
                        let _ = write!(
                            s,
                            "Self::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Map(vec![\n"
                        );
                        for f in fields {
                            let _ = write!(
                                s,
                                "(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),\n"
                            );
                        }
                        s.push_str("]))]),\n");
                    }
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                        let _ = write!(s, "Self::{vn}({}) => ", binds.join(", "));
                        if *arity == 1 {
                            let _ = write!(
                                s,
                                "::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(__f0))]),\n"
                            );
                        } else {
                            let _ = write!(
                                s,
                                "::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Seq(vec![\n"
                            );
                            for b in &binds {
                                let _ = write!(s, "::serde::Serialize::to_value({b}),\n");
                            }
                            s.push_str("]))]),\n");
                        }
                    }
                }
            }
            s.push_str("}\n}\n}\n");
        }
    }
    s
}

fn gen_deserialize(item: &Item) -> String {
    let mut s = String::new();
    match item {
        Item::NamedStruct { name, fields } => {
            let _ = write!(
                s,
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 let m = v.as_map().ok_or_else(|| ::serde::DeError::expected(\"map\", \"{name}\", v))?;\n\
                 Ok(Self {{\n"
            );
            for f in fields {
                let _ = write!(
                    s,
                    "{f}: ::serde::Deserialize::from_value(::serde::field(m, \"{f}\"))?,\n"
                );
            }
            s.push_str("})\n}\n}\n");
        }
        Item::TupleStruct { name, arity } => {
            let _ = write!(
                s,
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n"
            );
            if *arity == 1 {
                s.push_str("Ok(Self(::serde::Deserialize::from_value(v)?))\n");
            } else {
                let _ = write!(
                    s,
                    "let seq = v.as_seq().ok_or_else(|| ::serde::DeError::expected(\"sequence\", \"{name}\", v))?;\n\
                     if seq.len() != {arity} {{\n\
                     return Err(::serde::DeError::custom(format!(\"expected {arity} elements for {name}, found {{}}\", seq.len())));\n\
                     }}\n\
                     Ok(Self(\n"
                );
                for k in 0..*arity {
                    let _ = write!(s, "::serde::Deserialize::from_value(&seq[{k}])?,\n");
                }
                s.push_str("))\n");
            }
            s.push_str("}\n}\n");
        }
        Item::Enum { name, variants } => {
            let _ = write!(
                s,
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n"
            );
            for v in variants {
                if matches!(v.kind, VariantKind::Unit) {
                    let vn = &v.name;
                    let _ = write!(s, "\"{vn}\" => Ok(Self::{vn}),\n");
                }
            }
            let _ = write!(
                s,
                "__other => Err(::serde::DeError::custom(format!(\"unknown unit variant `{{__other}}` for {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                 let (__name, __payload) = &__m[0];\n\
                 match __name.as_str() {{\n"
            );
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {}
                    VariantKind::Named(fields) => {
                        let _ = write!(
                            s,
                            "\"{vn}\" => {{\n\
                             let __fm = __payload.as_map().ok_or_else(|| ::serde::DeError::expected(\"map\", \"{name}::{vn}\", __payload))?;\n\
                             Ok(Self::{vn} {{\n"
                        );
                        for f in fields {
                            let _ = write!(
                                s,
                                "{f}: ::serde::Deserialize::from_value(::serde::field(__fm, \"{f}\"))?,\n"
                            );
                        }
                        s.push_str("})\n}\n");
                    }
                    VariantKind::Tuple(arity) => {
                        if *arity == 1 {
                            let _ = write!(
                                s,
                                "\"{vn}\" => Ok(Self::{vn}(::serde::Deserialize::from_value(__payload)?)),\n"
                            );
                        } else {
                            let _ = write!(
                                s,
                                "\"{vn}\" => {{\n\
                                 let __seq = __payload.as_seq().ok_or_else(|| ::serde::DeError::expected(\"sequence\", \"{name}::{vn}\", __payload))?;\n\
                                 if __seq.len() != {arity} {{\n\
                                 return Err(::serde::DeError::custom(format!(\"expected {arity} elements for {name}::{vn}, found {{}}\", __seq.len())));\n\
                                 }}\n\
                                 Ok(Self::{vn}(\n"
                            );
                            for k in 0..*arity {
                                let _ =
                                    write!(s, "::serde::Deserialize::from_value(&__seq[{k}])?,\n");
                            }
                            s.push_str("))\n}\n");
                        }
                    }
                }
            }
            let _ = write!(
                s,
                "__other => Err(::serde::DeError::custom(format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                 }}\n\
                 }}\n\
                 __other => Err(::serde::DeError::expected(\"variant\", \"{name}\", __other)),\n\
                 }}\n\
                 }}\n\
                 }}\n"
            );
        }
    }
    s
}
