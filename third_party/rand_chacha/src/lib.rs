//! Offline ChaCha8 random generator compatible with this workspace's
//! `rand` trait stubs.
//!
//! This is a faithful ChaCha stream cipher core (D. J. Bernstein) with 8
//! double-rounds, keyed by a 32-byte seed and a 64-bit block counter. The
//! keystream is served as little-endian `u32` words. It is deterministic,
//! portable, and statistically strong; it does not attempt bit-for-bit
//! output compatibility with the upstream `rand_chacha` crate (nothing in
//! this workspace depends on upstream streams — only on self-consistency).

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// ChaCha with 8 rounds, the workspace's standard seeded generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Cipher state template: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unserved word index in `block` (16 = exhausted).
    word: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut x = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (o, s) in x.iter_mut().zip(self.state.iter()) {
            *o = o.wrapping_add(*s);
        }
        self.block = x;
        self.word = 0;
        // 64-bit block counter in words 12..13.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
    }
}

#[inline(always)]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter (12, 13) and nonce (14, 15) start at zero.
        Self {
            state,
            block: [0; 16],
            word: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word >= 16 {
            self.refill();
        }
        let w = self.block[self.word];
        self.word += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        hi << 32 | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn full_seed_constructor_works() {
        let mut r = ChaCha8Rng::from_seed([7u8; 32]);
        let x = r.next_u32();
        let y = r.next_u32();
        assert_ne!(x, y);
    }

    #[test]
    fn stream_looks_uniform() {
        // Crude sanity: mean of 10k unit samples near 0.5.
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        // And bools near p.
        let hits = (0..n).filter(|_| r.gen_bool(0.3)).count() as f64 / n as f64;
        assert!((hits - 0.3).abs() < 0.03, "rate {hits}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..10 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
