//! Offline property-testing harness exposing the subset of the `proptest`
//! API this workspace uses: the `proptest!` macro, `prop_assert!` /
//! `prop_assert_eq!`, `Strategy` with `prop_map`, numeric-range and tuple
//! strategies, `any::<T>()`, `prop::collection::vec`, `prop::option::of`,
//! `prop::bool::ANY`, and `ProptestConfig::with_cases`.
//!
//! Unlike real proptest there is no shrinking and no persistence: each
//! test runs a fixed number of cases drawn from a ChaCha8 stream seeded by
//! the test's name, so failures are deterministic and reproducible by
//! rerunning the same test.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Convenience re-exports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// The RNG driving generation (fixed so streams are reproducible).
pub type TestRng = ChaCha8Rng;

/// Per-test configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Builds the deterministic RNG for one test case. Public for the
/// `proptest!` macro expansion; not part of the mirrored API.
#[must_use]
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the test name keeps streams distinct per test while
    // staying stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case)))
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9),
);

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over `T`'s whole domain (see [`Arbitrary`]).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

// ---------------------------------------------------------------------------
// prop:: namespace (collection, option, bool)
// ---------------------------------------------------------------------------

/// Namespaced strategy constructors mirroring proptest's `prop` module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// A length specification: an exact size or a size range.
        pub struct SizeRange {
            lo: usize,
            /// Exclusive upper bound.
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                Self {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                Self {
                    lo: *r.start(),
                    hi: r.end() + 1,
                }
            }
        }

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Vector strategy: each element from `element`, length from
        /// `size` (a `usize`, `a..b`, or `a..=b`).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.gen_range(self.size.lo..self.size.hi);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Strategy for `Option<S::Value>`.
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `Some` from `inner` three times out of four, else `None`
        /// (proptest's default `of` also weights toward `Some`).
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                if rng.gen_bool(0.75) {
                    Some(self.inner.generate(rng))
                } else {
                    None
                }
            }
        }
    }

    /// `bool` strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// The fair-coin `bool` strategy.
        pub struct BoolAny;

        /// Either boolean with equal probability.
        pub const ANY: BoolAny = BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.gen_bool(0.5)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines `#[test]` functions that run a property over many random cases.
///
/// Supports an optional `#![proptest_config(expr)]` header applying to all
/// properties in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each `fn` into a
/// `#[test]` running `cfg.cases` generated cases.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(
                    let $arg = $crate::Strategy::generate(&{ $strat }, &mut __rng);
                )*
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
}

/// Asserts a property-test condition (alias of `assert!`; this harness
/// fails fast instead of shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts property-test equality (alias of `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        use rand::RngCore;
        let mut a = crate::test_rng("t", 0);
        let mut b = crate::test_rng("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_rng("t", 1);
        let mut d = crate::test_rng("u", 0);
        assert_ne!(b.next_u64(), c.next_u64());
        assert_ne!(c.next_u64(), d.next_u64());
    }

    proptest! {
        fn ranges_and_tuples_respect_bounds(
            x in -10i64..10,
            y in 0.0f64..=1.0,
            pair in (0u32..5, 0u32..5),
            flag in prop::bool::ANY,
            maybe in prop::option::of(1u8..4),
            v in prop::collection::vec(0usize..100, 2..6),
        ) {
            prop_assert!((-10..10).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
            prop_assert!(pair.0 < 5 && pair.1 < 5);
            prop_assert!(usize::from(flag) <= 1);
            if let Some(m) = maybe {
                prop_assert!((1..4).contains(&m));
            }
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 100));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        /// Doc comments and attributes on properties must be accepted.
        fn config_header_applies(n in 0u8..=255) {
            let mapped = (0u8..=n).prop_map(|k| u16::from(k) + 1);
            let mut rng = crate::test_rng("inner", u32::from(n));
            let m = mapped.generate(&mut rng);
            prop_assert!((1..=256).contains(&m));
        }

        fn fixed_size_vec(v in prop::collection::vec(0.0f64..1.0, 3)) {
            prop_assert_eq!(v.len(), 3);
        }

        fn any_covers_integers(a in any::<u64>(), b in any::<bool>()) {
            prop_assert_eq!(a, a.wrapping_add(0));
            prop_assert!(usize::from(b) <= 1);
        }
    }
}
