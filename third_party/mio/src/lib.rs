//! Offline shim of the `mio` reactor: a minimal epoll wrapper with the
//! familiar [`Poll`] / [`Events`] / [`Token`] / [`Interest`] / [`Waker`]
//! surface, implemented directly over raw Linux syscalls so it builds in
//! the registry-less environment like the other `third_party/` crates.
//!
//! Scope: exactly what an event-driven TCP server needs —
//!
//! - level-triggered readiness for any [`AsRawFd`] source (the server
//!   registers `std::net` listeners/streams it has set nonblocking);
//! - per-source [`Token`]s carried back on each [`Event`];
//! - a cross-thread [`Waker`] built on `eventfd(2)` so non-epoll threads
//!   (an acceptor, a scoring executor) can interrupt a blocked
//!   [`Poll::poll`];
//! - read/write/closed readiness classification (`EPOLLIN`, `EPOLLOUT`,
//!   `EPOLLHUP`/`EPOLLERR`/`EPOLLRDHUP`);
//! - edge-triggered mode per registration via [`Interest::edge`]
//!   (`EPOLLET`), the rearm-free discipline upstream mio defaults to: the
//!   kernel reports a source once per readiness *transition*, and the
//!   caller must drain it to `WouldBlock` before the next event can
//!   arrive. Level-triggered remains the default for sources where
//!   re-reporting undrained readiness is the simpler contract (e.g. the
//!   [`Waker`] eventfd).
//!
//! Not implemented: `mio::net` wrapper types and non-Linux selectors.
//!
//! Choosing a trigger mode: level-triggered needs no rearm bookkeeping —
//! readiness not fully drained is simply reported again — but a source
//! that stays ready re-fires on every poll, so a server must mutate its
//! registration (`reregister`) to mute interests it cannot act on yet.
//! Edge-triggered inverts the cost: one `epoll_ctl` per connection ever,
//! no interest churn on the hot path, in exchange for the caller caching
//! readiness itself and never abandoning a drain before `WouldBlock`.

#![cfg(target_os = "linux")]

use std::io;
use std::os::raw::{c_int, c_uint, c_void};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::Arc;
use std::time::Duration;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLET: u32 = 1 << 31;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o0004000;

/// `struct epoll_event`. On x86-64 the kernel ABI packs it to 12 bytes;
/// other architectures use natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

/// Converts a `-1` syscall return into the thread's `errno` as `io::Error`.
fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Associates a registered source with the events it produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Readiness interest, combinable with `|` like upstream mio.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u32);

impl Interest {
    /// Readable readiness (`EPOLLIN`, plus peer-shutdown reporting).
    pub const READABLE: Interest = Interest(EPOLLIN | EPOLLRDHUP);
    /// Writable readiness (`EPOLLOUT`).
    pub const WRITABLE: Interest = Interest(EPOLLOUT);

    /// Whether this interest includes readable readiness.
    #[must_use]
    pub fn is_readable(self) -> bool {
        self.0 & EPOLLIN != 0
    }

    /// Whether this interest includes writable readiness.
    #[must_use]
    pub fn is_writable(self) -> bool {
        self.0 & EPOLLOUT != 0
    }

    /// This interest in edge-triggered mode (`EPOLLET`): the kernel
    /// reports the source once per readiness *transition* instead of on
    /// every poll while ready. The caller owns the rearm discipline — it
    /// must drain the source to `WouldBlock` (caching the readiness it
    /// could not act on) or the next event never arrives.
    #[must_use]
    pub const fn edge(self) -> Interest {
        Interest(self.0 | EPOLLET)
    }

    /// Whether this interest requests edge-triggered delivery.
    #[must_use]
    pub fn is_edge_triggered(self) -> bool {
        self.0 & EPOLLET != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

/// One readiness notification out of [`Poll::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    events: u32,
}

impl Event {
    /// The token the source was registered under.
    #[must_use]
    pub fn token(&self) -> Token {
        self.token
    }

    /// Readable (or peer-closed: a pending `read` would not block).
    #[must_use]
    pub fn is_readable(&self) -> bool {
        self.events & (EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0
    }

    /// Writable (or errored: a pending `write` would not block).
    #[must_use]
    pub fn is_writable(&self) -> bool {
        self.events & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0
    }

    /// The peer has closed (hangup / error / read-side shutdown).
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.events & (EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0
    }
}

/// Fixed-capacity buffer for readiness notifications.
pub struct Events {
    raw: Vec<EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer receiving at most `capacity` events per poll.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            raw: vec![EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// Events delivered by the last [`Poll::poll`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.raw[..self.len].iter().map(|e| Event {
            token: Token(e.data as usize),
            events: e.events,
        })
    }

    /// Whether the last poll delivered nothing (timeout or wake race).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The registration handle: clone-free, shared by reference. Split from
/// [`Poll`] so sources can be (de)registered while another borrow polls,
/// mirroring upstream mio's `Poll::registry()`.
#[derive(Debug)]
pub struct Registry {
    epfd: RawFd,
}

impl Registry {
    fn ctl(
        &self,
        op: c_int,
        fd: RawFd,
        token: Token,
        interest: Option<Interest>,
    ) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest.map_or(0, |i| i.0),
            data: token.0 as u64,
        };
        // SAFETY: epfd and fd are live descriptors owned by the caller and
        // `ev` outlives the call; epoll_ctl copies it synchronously.
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
    }

    /// Starts delivering `interest` readiness for `source` under `token`.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_ctl(2)` error, e.g. `EEXIST` for a double
    /// registration.
    pub fn register<S: AsRawFd + ?Sized>(
        &self,
        source: &S,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, source.as_raw_fd(), token, Some(interest))
    }

    /// Replaces an existing registration's token/interest.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_ctl(2)` error, e.g. `ENOENT` if never
    /// registered.
    pub fn reregister<S: AsRawFd + ?Sized>(
        &self,
        source: &S,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, source.as_raw_fd(), token, Some(interest))
    }

    /// Stops delivering readiness for `source`. Closing the descriptor
    /// deregisters implicitly; this exists for sources that outlive their
    /// registration.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_ctl(2)` error.
    pub fn deregister<S: AsRawFd + ?Sized>(&self, source: &S) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, source.as_raw_fd(), Token(0), None)
    }
}

/// An epoll instance plus its registration handle.
pub struct Poll {
    registry: Registry,
}

impl Poll {
    /// A fresh epoll instance (`EPOLL_CLOEXEC`).
    ///
    /// # Errors
    ///
    /// The underlying `epoll_create1(2)` error.
    pub fn new() -> io::Result<Self> {
        // SAFETY: no pointers involved.
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Self {
            registry: Registry { epfd },
        })
    }

    /// The registration handle.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Blocks until readiness arrives, `timeout` expires (`None` blocks
    /// indefinitely), or a [`Waker`] fires. Filled events land in
    /// `events`. `EINTR` is retried internally with the *remaining*
    /// budget approximated as the full timeout, matching upstream mio's
    /// behavior closely enough for deadline loops that recompute their
    /// timeout every iteration.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_wait(2)` error (never `EINTR`).
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms: c_int = match timeout {
            None => -1,
            // Round up so a 100us deadline does not spin at timeout 0.
            Some(d) => c_int::try_from(d.as_millis().min(i32::MAX as u128)).unwrap_or(i32::MAX),
        };
        events.len = 0;
        loop {
            // SAFETY: `events.raw` is a live, correctly-sized buffer; the
            // kernel writes at most `capacity` entries.
            let n = unsafe {
                epoll_wait(
                    self.registry.epfd,
                    events.raw.as_mut_ptr(),
                    events.raw.len() as c_int,
                    timeout_ms,
                )
            };
            if n >= 0 {
                events.len = n as usize;
                return Ok(());
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Poll {
    fn drop(&mut self) {
        // SAFETY: epfd was returned by epoll_create1 and is closed once.
        unsafe {
            close(self.registry.epfd);
        }
    }
}

/// Owned eventfd shared between the [`Waker`] clones and the epoll side.
#[derive(Debug)]
struct OwnedEventFd(RawFd);

impl Drop for OwnedEventFd {
    fn drop(&mut self) {
        // SAFETY: fd was returned by eventfd and is closed once.
        unsafe {
            close(self.0);
        }
    }
}

/// Cross-thread wakeup for a blocked [`Poll::poll`]: any thread may call
/// [`Waker::wake`]; the poller observes a readable event carrying the
/// waker's token. Cloning shares the same eventfd. The counter is drained
/// on every delivery, so wakes coalesce instead of accumulating.
#[derive(Debug, Clone)]
pub struct Waker {
    fd: Arc<OwnedEventFd>,
}

impl Waker {
    /// Creates a waker registered on `registry` under `token`.
    ///
    /// # Errors
    ///
    /// The underlying `eventfd(2)` / `epoll_ctl(2)` error.
    pub fn new(registry: &Registry, token: Token) -> io::Result<Self> {
        // SAFETY: no pointers involved.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        let owned = OwnedEventFd(fd);
        let waker = Self {
            fd: Arc::new(owned),
        };
        registry.register(&waker, token, Interest::READABLE)?;
        Ok(waker)
    }

    /// Wakes the poller. Saturation of the eventfd counter (the poller
    /// has not drained for 2^64-2 wakes) is impossible in practice; a
    /// `WouldBlock` there still leaves the fd readable, so the wake is
    /// never lost.
    ///
    /// # Errors
    ///
    /// The underlying `write(2)` error, `WouldBlock` excluded.
    pub fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        // SAFETY: writing 8 bytes from a live stack value to a live fd.
        let ret = unsafe { write(self.fd.0, (&one as *const u64).cast(), 8) };
        if ret == 8 {
            return Ok(());
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::WouldBlock {
            return Ok(());
        }
        Err(err)
    }

    /// Drains the pending wake count so level-triggered polling stops
    /// reporting the waker readable. Call on every waker-token event.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: reading 8 bytes into a live stack buffer from a live fd.
        unsafe {
            read(self.fd.0, buf.as_mut_ptr().cast(), 8);
        }
    }
}

impl AsRawFd for Waker {
    fn as_raw_fd(&self) -> RawFd {
        self.fd.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};

    const CONN: Token = Token(7);
    const WAKE: Token = Token(99);

    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connects");
        let (server, _) = listener.accept().expect("accepts");
        (client, server)
    }

    #[test]
    fn readable_event_carries_the_registered_token() {
        let mut poll = Poll::new().expect("epoll");
        let mut events = Events::with_capacity(8);
        let (mut client, server) = tcp_pair();
        server.set_nonblocking(true).expect("nonblocking");
        poll.registry()
            .register(&server, CONN, Interest::READABLE)
            .expect("registers");

        // Nothing pending: a short poll times out empty.
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .expect("polls");
        assert!(events.is_empty());

        client.write_all(b"ping").expect("writes");
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .expect("polls");
        let ev = events.iter().next().expect("one event");
        assert_eq!(ev.token(), CONN);
        assert!(ev.is_readable());
        assert!(!ev.is_closed());

        let mut buf = [0u8; 16];
        let n = (&server).read(&mut buf).expect("reads");
        assert_eq!(&buf[..n], b"ping");
    }

    #[test]
    fn peer_close_reports_closed_readiness() {
        let mut poll = Poll::new().expect("epoll");
        let mut events = Events::with_capacity(8);
        let (client, server) = tcp_pair();
        server.set_nonblocking(true).expect("nonblocking");
        poll.registry()
            .register(&server, CONN, Interest::READABLE)
            .expect("registers");
        drop(client);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .expect("polls");
        let ev = events.iter().next().expect("one event");
        assert!(ev.is_readable(), "EOF must read as readable");
        assert!(ev.is_closed());
    }

    #[test]
    fn writable_interest_toggles_via_reregister() {
        let mut poll = Poll::new().expect("epoll");
        let mut events = Events::with_capacity(8);
        let (_client, server) = tcp_pair();
        server.set_nonblocking(true).expect("nonblocking");
        poll.registry()
            .register(&server, CONN, Interest::READABLE | Interest::WRITABLE)
            .expect("registers");
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .expect("polls");
        assert!(
            events.iter().any(|e| e.token() == CONN && e.is_writable()),
            "a fresh socket is writable"
        );
        // Drop write interest: the socket stops reporting writable.
        poll.registry()
            .reregister(&server, CONN, Interest::READABLE)
            .expect("reregisters");
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .expect("polls");
        assert!(events.iter().all(|e| !e.is_writable() || e.is_closed()));
        poll.registry().deregister(&server).expect("deregisters");
    }

    #[test]
    fn edge_triggered_reports_once_per_readiness_transition() {
        let mut poll = Poll::new().expect("epoll");
        let mut events = Events::with_capacity(8);
        let (mut client, server) = tcp_pair();
        server.set_nonblocking(true).expect("nonblocking");
        let interest = (Interest::READABLE | Interest::WRITABLE).edge();
        assert!(interest.is_edge_triggered());
        assert!(interest.is_readable() && interest.is_writable());
        poll.registry()
            .register(&server, CONN, interest)
            .expect("registers");

        // A fresh socket's writability is itself an edge: exactly one
        // report, then silence until writability is lost and regained.
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .expect("polls");
        assert!(
            events.iter().any(|e| e.token() == CONN && e.is_writable()),
            "initial writable edge"
        );
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .expect("polls");
        assert!(
            events.is_empty(),
            "no repeat report without a new transition"
        );

        // Unread data arriving is a readable edge ...
        client.write_all(b"ping").expect("writes");
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .expect("polls");
        let ev = events.iter().next().expect("readable edge");
        assert_eq!(ev.token(), CONN);
        assert!(ev.is_readable());

        // ... reported once: leaving the bytes in the socket does NOT
        // re-report (the level-triggered behavior would).
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .expect("polls");
        assert!(events.is_empty(), "undrained readiness is not re-reported");

        // More bytes arriving is a fresh transition: a new event fires
        // even though the previous payload was never read.
        client.write_all(b"pong").expect("writes");
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .expect("polls");
        assert!(
            events.iter().any(|e| e.token() == CONN && e.is_readable()),
            "new data is a new edge"
        );

        let mut buf = [0u8; 16];
        let n = (&server).read(&mut buf).expect("reads");
        assert_eq!(&buf[..n], b"pingpong");
    }

    #[test]
    fn edge_triggered_peer_close_still_reports_closed() {
        let mut poll = Poll::new().expect("epoll");
        let mut events = Events::with_capacity(8);
        let (client, server) = tcp_pair();
        server.set_nonblocking(true).expect("nonblocking");
        poll.registry()
            .register(&server, CONN, Interest::READABLE.edge())
            .expect("registers");
        drop(client);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .expect("polls");
        let ev = events.iter().next().expect("close edge");
        assert!(ev.is_readable(), "EOF must read as readable");
        assert!(ev.is_closed());
    }

    #[test]
    fn waker_interrupts_a_blocked_poll_and_drains() {
        let mut poll = Poll::new().expect("epoll");
        let mut events = Events::with_capacity(8);
        let waker = Waker::new(poll.registry(), WAKE).expect("waker");
        let remote = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.wake().expect("wakes");
        });
        // Blocks until the waker fires (a 10s cap turns a missed wake into
        // a test failure instead of a hang).
        poll.poll(&mut events, Some(Duration::from_secs(10)))
            .expect("polls");
        t.join().expect("waker thread");
        let ev = events.iter().next().expect("wake event");
        assert_eq!(ev.token(), WAKE);
        waker.drain();
        // Drained: the next short poll is quiet.
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .expect("polls");
        assert!(events.is_empty(), "drain must clear the eventfd");
        // Coalescing: many wakes, one drain.
        for _ in 0..100 {
            waker.wake().expect("wakes");
        }
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .expect("polls");
        assert!(!events.is_empty());
        waker.drain();
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .expect("polls");
        assert!(events.is_empty(), "wakes coalesce into one readable edge");
    }
}
