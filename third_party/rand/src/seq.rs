//! Slice sampling helpers mirroring `rand::seq`.

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Uniform Fisher–Yates shuffle.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly chosen element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j: usize = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngCore;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut Lcg(9));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn choose_respects_emptiness() {
        let mut rng = Lcg(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let one = [42u8];
        assert_eq!(one.choose(&mut rng), Some(&42));
    }
}
