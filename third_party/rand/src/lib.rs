//! Offline, dependency-free reimplementation of the subset of the
//! `rand` 0.8 API used by this workspace.
//!
//! The build environment has no network access and no registry cache, so
//! the real `rand` crate cannot be fetched. This crate provides the same
//! trait names and call signatures (`Rng`, `RngCore`, `SeedableRng`,
//! `seq::SliceRandom`, `prelude::*`) with a deterministic, portable
//! implementation: all sampling is derived from the generator's `next_u64`
//! stream with fixed arithmetic, so results are bit-identical across
//! platforms and across sequential/parallel execution.
//!
//! Only what the workspace calls is implemented; this is not a general
//! replacement for `rand`.

pub mod seq;

/// Convenience re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

/// The raw generator interface: a source of uniformly distributed bits.
pub trait RngCore {
    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open `a..b` or inclusive `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)` using the top
/// 53 bits (the full mantissa width).
#[inline]
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 —
    /// the same convention as `rand_core` 0.6.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expansion and a fallback generator.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A range that can produce a single uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` via Lemire's multiply-shift. Slightly
/// non-uniform for astronomically large spans, but deterministic, fast and
/// unbiased to ~2⁻⁶⁴ — ample for this workspace.
#[inline]
fn mul_shift(bits: u64, span: u64) -> u64 {
    ((u128::from(bits) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let offset = mul_shift(rng.next_u64(), span);
                (self.start as $u).wrapping_add(offset as $u) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $u).wrapping_sub(start as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = mul_shift(rng.next_u64(), span + 1);
                (start as $u).wrapping_add(offset as $u) as $t
            }
        }
    )*};
}

impl_int_range!(
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
);

macro_rules! impl_float_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.end - (self.end - self.start) * <$t>::EPSILON } else { v }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                start + (end - start) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Counter(1);
        for _ in 0..1000 {
            let x: i64 = r.gen_range(-5..7);
            assert!((-5..7).contains(&x));
            let y: usize = r.gen_range(0..3);
            assert!(y < 3);
            let z: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&z));
            let w: i64 = r.gen_range(-2..=2);
            assert!((-2..=2).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Counter(7);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = Counter(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
