//! Offline micro-benchmark harness exposing the subset of the `criterion`
//! API this workspace's `harness = false` benches use: `Criterion`,
//! `benchmark_group` with `sample_size` / `warm_up_time` /
//! `measurement_time`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: a timed warm-up estimates the cost
//! of one iteration, then `sample_size` samples are collected, each timing
//! a batch sized so all samples together fill the configured measurement
//! time. Reported statistics are min / mean / max per-iteration time —
//! no outlier analysis, plots, or baselines.

use std::time::{Duration, Instant};

/// Opaque identity function preventing the optimizer from deleting a
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier with a function name and a parameter rendering.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter rendering.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Top-level benchmark driver. `Default` reads the process arguments and
/// treats the first non-flag argument as a substring filter on benchmark
/// ids (so `cargo bench -- score` runs only scoring benches).
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "benches");
        Self { filter }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(3),
        }
    }
}

/// A group of benchmarks sharing a name prefix and measurement settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets how long to warm up before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total time budget for measurement samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark; the closure receives a [`Bencher`] and must
    /// call [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id.into().id);
        if let Some(filter) = &self.criterion.filter {
            if !full_id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&full_id);
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (separator line, criterion-compat no-op otherwise).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    /// Mean per-iteration nanoseconds of each collected sample.
    sample_ns: Vec<f64>,
}

impl Bencher {
    /// Measures `routine`, discarding its output via an implicit
    /// black-box (the timing loop consumes it).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget elapses, estimating the
        // per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let est_iter_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        // Size each sample's batch so all samples fit the budget.
        let budget_ns = self.measurement_time.as_nanos() as f64;
        let iters_per_sample =
            ((budget_ns / self.sample_size as f64 / est_iter_ns).floor() as u64).max(1);

        self.sample_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.sample_ns.push(elapsed / iters_per_sample as f64);
        }
    }

    fn report(&self, id: &str) {
        if self.sample_ns.is_empty() {
            println!("{id:<40} no measurement (Bencher::iter never called)");
            return;
        }
        let min = self.sample_ns.iter().copied().fold(f64::INFINITY, f64::min);
        let max = self
            .sample_ns
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let mean = self.sample_ns.iter().sum::<f64>() / self.sample_ns.len() as f64;
        println!(
            "{id:<40} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_produces_samples() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        let mut ran = false;
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("match_me".to_string()),
        };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("other", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(!ran);
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("fit", 10).id, "fit/10");
        assert_eq!(BenchmarkId::from_parameter("ml9").id, "ml9");
    }
}
