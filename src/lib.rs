//! Umbrella crate re-exporting the split-manufacturing security toolkit.
pub use sm_attack as attack;
pub use sm_layout as layout;
pub use sm_ml as ml;
