//! Integration tests of the interchange format and the LoC refinement /
//! global-matching extensions, spanning all three library crates.

use splitmfg::attack::attack::{AttackConfig, ScoreOptions, TrainedAttack};
use splitmfg::attack::matching::{greedy_matching, mutual_best};
use splitmfg::attack::refine::{timing_prune, WirelengthBudget};
use splitmfg::layout::io::{read_challenge, write_challenge, write_truth};
use splitmfg::layout::{SplitLayer, SplitView, Suite};

const SCALE: f64 = 0.05;

fn views(split: u8) -> Vec<SplitView> {
    Suite::ispd2011_like(SCALE)
        .expect("suite generation")
        .split_all(SplitLayer::new(split).expect("valid"))
}

#[test]
fn attack_results_survive_an_io_roundtrip() {
    // Serialising a challenge to text and parsing it back must not change
    // what the attack computes (determinism across the IO boundary).
    let vs = views(8);
    let roundtripped: Vec<SplitView> = vs
        .iter()
        .map(|v| read_challenge(&write_challenge(v), &write_truth(v)).expect("roundtrip parses"))
        .collect();
    let cfg = AttackConfig::imp9();
    let train_a: Vec<&SplitView> = vs[1..].iter().collect();
    let train_b: Vec<&SplitView> = roundtripped[1..].iter().collect();
    let model_a = TrainedAttack::train(&cfg, &train_a, None).expect("train");
    let model_b = TrainedAttack::train(&cfg, &train_b, None).expect("train");
    let opts = ScoreOptions {
        parallelism: splitmfg::attack::Parallelism::Sequential,
        ..ScoreOptions::default()
    };
    let scored_a = model_a.score(&vs[0], &opts);
    let scored_b = model_b.score(&roundtripped[0], &opts);
    assert_eq!(scored_a.pairs_scored, scored_b.pairs_scored);
    for (a, b) in scored_a.slots.iter().zip(&scored_b.slots) {
        assert_eq!(a.true_prob, b.true_prob);
    }
}

#[test]
fn timing_refinement_composes_with_the_attack() {
    let vs = views(6);
    let train: Vec<&SplitView> = vs[1..].iter().collect();
    let model = TrainedAttack::train(&AttackConfig::imp11(), &train, None).expect("train");
    let scored = model.score(&vs[0], &ScoreOptions::default());
    let budget = WirelengthBudget::learn(&train, 0.98);
    let refined = timing_prune(&scored, &vs[0], budget);

    // Refinement can only remove candidates.
    assert!(refined.pairs_scored <= scored.pairs_scored);
    assert!(refined.mean_loc_at(0.0) <= scored.mean_loc_at(0.0));
    // With a 98% budget + safety margin, nearly all reachable truths
    // survive refinement.
    let truths_before = scored
        .slots
        .iter()
        .filter(|s| s.true_prob.is_some())
        .count();
    let truths_after = refined
        .slots
        .iter()
        .filter(|s| s.true_prob.is_some())
        .count();
    assert!(
        truths_after as f64 >= 0.9 * truths_before as f64,
        "{truths_after}/{truths_before} truths survived"
    );
}

#[test]
fn global_matching_is_consistent_with_scoring() {
    let vs = views(8);
    let train: Vec<&SplitView> = vs[1..].iter().collect();
    let model = TrainedAttack::train(&AttackConfig::imp9(), &train, None).expect("train");
    let scored = model.score(&vs[0], &ScoreOptions::default());
    let greedy = greedy_matching(&scored, &vs[0], 0.5);
    let mutual = mutual_best(&scored, &vs[0], 0.5);
    assert!(greedy.committed * 2 <= vs[0].num_vpins());
    assert!(mutual.committed <= greedy.committed);
    assert!(greedy.recall() <= 1.0 && mutual.recall() <= greedy.recall() + 1e-12);
}

#[test]
fn challenge_files_hide_the_matching() {
    // The challenge text alone must not leak truth: parsing it with a
    // wrong (shuffled) truth file yields a different matching, proving the
    // matching lives only in the truth file.
    let v = &views(8)[0];
    let challenge = write_challenge(v);
    assert!(
        !challenge.contains("truth"),
        "challenge must not embed truth data"
    );
    // Build an alternative valid involution: rotate pairs.
    let n = v.num_vpins();
    if n >= 4 {
        let mut alt = String::from("# splitmfg truth v1\nname x\n");
        let drivers: Vec<usize> = (0..n).filter(|&i| v.vpins()[i].drives()).collect();
        let loads: Vec<usize> = (0..n).filter(|&i| !v.vpins()[i].drives()).collect();
        if drivers.len() == loads.len() && !drivers.is_empty() {
            for (d, l) in drivers.iter().zip(loads.iter().rev()) {
                alt.push_str(&format!("{d} {l}\n"));
            }
            let parsed = read_challenge(&challenge, &alt).expect("alt truth parses");
            let differs = (0..n).any(|i| parsed.true_match(i) != v.true_match(i));
            assert!(
                differs,
                "alternative truth must produce a different matching"
            );
        }
    }
}
