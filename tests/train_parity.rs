//! The binned training backend must be invisible in results: for every
//! benchmark and split layer, a model trained with `TreeBackend::Binned`
//! (histogram split-finding with sibling subtraction) equals the model
//! trained with `TreeBackend::Reference` bit for bit — same ensemble,
//! same radius, same scoring — including the REPTree grow/prune/backfit
//! pipeline the paper's classifier runs.

use splitmfg::attack::attack::{AttackConfig, ScoreOptions, TrainOptions, TrainedAttack};
use splitmfg::attack::xval::leave_one_out_opt;
use splitmfg::attack::TreeBackend;
use splitmfg::layout::{SplitLayer, SplitView, Suite};

const SCALE: f64 = 0.02;

fn views(split: u8) -> Vec<SplitView> {
    Suite::ispd2011_like(SCALE)
        .expect("suite generation")
        .split_all(SplitLayer::new(split).expect("valid"))
}

fn with_backend(backend: TreeBackend) -> TrainOptions {
    TrainOptions { backend }
}

#[test]
fn binned_backend_reproduces_reference_on_every_benchmark_and_layer() {
    for split in [4u8, 6, 8] {
        let vs = views(split);
        for t in 0..vs.len() {
            let train: Vec<&SplitView> = vs
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != t)
                .map(|(_, v)| v)
                .collect();
            let cfg = AttackConfig::imp9();
            let reference =
                TrainedAttack::train_opt(&cfg, &train, None, with_backend(TreeBackend::Reference))
                    .expect("reference train");
            let binned =
                TrainedAttack::train_opt(&cfg, &train, None, with_backend(TreeBackend::Binned))
                    .expect("binned train");
            assert_eq!(
                reference, binned,
                "layer {split}, target {}: trained models diverged",
                vs[t].name
            );
            let scored_ref = reference.score(&vs[t], &ScoreOptions::default());
            let scored_bin = binned.score(&vs[t], &ScoreOptions::default());
            assert_eq!(
                scored_ref.hist, scored_bin.hist,
                "layer {split}, target {}: LoC histogram diverged",
                vs[t].name
            );
            assert_eq!(
                scored_ref, scored_bin,
                "layer {split}, target {}: scored view diverged",
                vs[t].name
            );
            assert_eq!(
                scored_ref.curve().points(),
                scored_bin.curve().points(),
                "layer {split}, target {}: LoC curve diverged",
                vs[t].name
            );
        }
    }
}

#[test]
fn cross_validation_is_backend_invariant() {
    // The full leave-one-out driver — per-design sample cache, fold
    // assembly, training, scoring — must fold the backend away entirely.
    let vs = views(8);
    let cfg = AttackConfig::imp11();
    let opts = ScoreOptions::default();
    let reference = leave_one_out_opt(&cfg, &vs, &opts, with_backend(TreeBackend::Reference))
        .expect("reference xval");
    let binned = leave_one_out_opt(&cfg, &vs, &opts, with_backend(TreeBackend::Binned))
        .expect("binned xval");
    assert_eq!(reference.len(), binned.len());
    for (r, b) in reference.iter().zip(&binned) {
        assert_eq!(r.test_name, b.test_name);
        assert_eq!(r.scored, b.scored, "{}: fold scoring diverged", r.test_name);
    }
}
