//! Parallel execution must be invisible in results: every parallel site of
//! the pipeline (bagged training, pair scoring, leave-one-out folds, PA
//! validation) is asserted bit-identical to its sequential run — on every
//! benchmark/split-layer combination and for arbitrary thread counts.

use proptest::prelude::*;
use splitmfg::attack::attack::{AttackConfig, ScoreOptions, TrainedAttack};
use splitmfg::attack::proximity::validate_pa_fraction;
use splitmfg::attack::xval::leave_one_out;
use splitmfg::attack::Parallelism;
use splitmfg::layout::{SplitLayer, SplitView, Suite};

const SCALE: f64 = 0.02;

fn views(split: u8) -> Vec<SplitView> {
    Suite::ispd2011_like(SCALE)
        .expect("suite generation")
        .split_all(SplitLayer::new(split).expect("valid"))
}

fn score_opts(parallelism: Parallelism) -> ScoreOptions {
    ScoreOptions {
        parallelism,
        ..ScoreOptions::default()
    }
}

#[test]
fn every_benchmark_and_layer_scores_identically_in_parallel() {
    for split in [4u8, 6, 8] {
        let vs = views(split);
        for t in 0..vs.len() {
            let train: Vec<&SplitView> = vs
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != t)
                .map(|(_, v)| v)
                .collect();
            let seq_cfg = AttackConfig::imp9().with_parallelism(Parallelism::Sequential);
            let par_cfg = AttackConfig::imp9().with_parallelism(Parallelism::Threads(2));
            let m_seq = TrainedAttack::train(&seq_cfg, &train, None).expect("train");
            let m_par = TrainedAttack::train(&par_cfg, &train, None).expect("train");
            assert_eq!(
                m_seq.model(),
                m_par.model(),
                "layer {split}, fold {t}: parallel training diverged"
            );
            let s_seq = m_seq.score(&vs[t], &score_opts(Parallelism::Sequential));
            let s_par = m_seq.score(&vs[t], &score_opts(Parallelism::Threads(4)));
            assert_eq!(
                s_seq, s_par,
                "layer {split}, fold {t}: parallel scoring diverged"
            );
        }
    }
}

#[test]
fn full_attack_is_bit_identical_sequential_vs_four_threads() {
    // The satellite end-to-end check: train + score + derive the curve for
    // every fold, sequentially and with four threads, and require the
    // ScoredView histograms, slot probabilities, and LocCurve points to be
    // identical — not approximately, exactly.
    let vs = views(8);
    let seq = leave_one_out(
        &AttackConfig::imp11().with_parallelism(Parallelism::Sequential),
        &vs,
        &score_opts(Parallelism::Sequential),
    )
    .expect("sequential xval");
    let par = leave_one_out(
        &AttackConfig::imp11().with_parallelism(Parallelism::Threads(4)),
        &vs,
        &score_opts(Parallelism::Threads(4)),
    )
    .expect("parallel xval");
    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.test_name, b.test_name);
        assert_eq!(
            a.scored.hist, b.scored.hist,
            "{}: histogram diverged",
            a.test_name
        );
        assert_eq!(a.scored, b.scored, "{}: scored view diverged", a.test_name);
        assert_eq!(
            a.scored.curve().points(),
            b.scored.curve().points(),
            "{}: LoC curve diverged",
            a.test_name
        );
    }
}

#[test]
fn pa_validation_is_bit_identical_across_parallelism() {
    let vs = views(8);
    let train: Vec<&SplitView> = vs[..4].iter().collect();
    let grid = [0.01, 0.05];
    let seq = validate_pa_fraction(
        &AttackConfig::imp9().with_parallelism(Parallelism::Sequential),
        &train,
        &grid,
        7,
    )
    .expect("sequential validation");
    let par = validate_pa_fraction(
        &AttackConfig::imp9().with_parallelism(Parallelism::Threads(3)),
        &train,
        &grid,
        7,
    )
    .expect("parallel validation");
    assert_eq!(
        seq, par,
        "validated PA rates must not depend on parallelism"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn arbitrary_thread_counts_reproduce_sequential_scoring(threads in 2usize..9) {
        let vs = views(8);
        let train: Vec<&SplitView> = vs[1..].iter().collect();
        let cfg = AttackConfig::imp7().with_parallelism(Parallelism::Threads(threads));
        let model = TrainedAttack::train(&cfg, &train, None).expect("train");
        let baseline = model.score(&vs[0], &score_opts(Parallelism::Sequential));
        let scored = model.score(&vs[0], &score_opts(Parallelism::Threads(threads)));
        prop_assert_eq!(baseline, scored);
    }
}
