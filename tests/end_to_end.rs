//! End-to-end integration tests spanning the layout substrate, the ML
//! substrate, and the attack: the complete pipeline of the paper's Fig. 1
//! on a small suite.

use splitmfg::attack::attack::{AttackConfig, ScoreOptions, TrainedAttack};
use splitmfg::attack::loc::LocCurve;
use splitmfg::attack::xval::leave_one_out;
use splitmfg::layout::{SplitLayer, Suite};

const SCALE: f64 = 0.05;

fn suite() -> Suite {
    Suite::ispd2011_like(SCALE).expect("suite generation")
}

#[test]
fn full_pipeline_recovers_most_matches_at_split8() {
    let views = suite().split_all(SplitLayer::new(8).expect("valid"));
    let folds = leave_one_out(&AttackConfig::imp11(), &views, &ScoreOptions::default())
        .expect("attack runs");
    let scored: Vec<_> = folds.into_iter().map(|f| f.scored).collect();
    let curve = LocCurve::from_views(&scored);
    // At the top split layer the attack keeps >=80% of matches with a
    // small candidate list (the paper reaches ~100% at |LoC| ~ a few).
    let pt = curve.max_accuracy_at_loc(10.0).expect("curve point exists");
    assert!(
        pt.accuracy > 0.8,
        "accuracy {:.3} too low at |LoC| 10",
        pt.accuracy
    );
}

#[test]
fn top_split_layer_is_far_easier_to_attack_than_lower_layers() {
    // The paper's layer trend: layer 8 is dramatically easier than layers
    // 6 and 4 (which sit close to each other — Table IV's 10% column is
    // not even monotone between them).
    let s = suite();
    let mut acc = Vec::new();
    for layer in [8u8, 6, 4] {
        let views = s.split_all(SplitLayer::new(layer).expect("valid"));
        let folds = leave_one_out(&AttackConfig::imp9(), &views, &ScoreOptions::default())
            .expect("attack runs");
        let scored: Vec<_> = folds.into_iter().map(|f| f.scored).collect();
        let curve = LocCurve::from_views(&scored);
        acc.push(curve.max_accuracy_at_loc(10.0).map_or(0.0, |p| p.accuracy));
    }
    assert!(
        acc[0] > acc[1] + 0.1 && acc[0] > acc[2] + 0.1,
        "layer 8 should dominate clearly: {acc:?}"
    );
}

#[test]
fn ml_model_beats_the_prior_work_baseline() {
    use splitmfg::attack::baseline::PriorWorkModel;
    let views = suite().split_all(SplitLayer::new(8).expect("valid"));
    let refs: Vec<_> = views.iter().collect();
    let prior = PriorWorkModel::fit(&refs);
    let folds = leave_one_out(&AttackConfig::imp9(), &views, &ScoreOptions::default())
        .expect("attack runs");
    for (fold, view) in folds.iter().zip(&views) {
        let base = prior.evaluate(view, 1.5);
        let ours = fold.scored.curve().min_loc_at_accuracy(base.accuracy);
        if let Some(pt) = ours {
            assert!(
                pt.mean_loc < base.mean_loc,
                "{}: ML LoC {:.1} not below baseline {:.1}",
                view.name,
                pt.mean_loc,
                base.mean_loc
            );
        }
    }
}

#[test]
fn training_and_testing_designs_are_separated() {
    // The leave-one-out driver must never train on the held-out design:
    // verify by checking the fold count and that each fold's model radius
    // is derived from the other four designs only (it changes when the
    // held-out design changes).
    let views = suite().split_all(SplitLayer::new(6).expect("valid"));
    let cfg = AttackConfig::imp9();
    let mut radii = Vec::new();
    for t in 0..views.len() {
        let train: Vec<_> = views
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != t)
            .map(|(_, v)| v)
            .collect();
        let model = TrainedAttack::train(&cfg, &train, None).expect("train");
        radii.push(model.radius().expect("imp has radius"));
    }
    assert_eq!(radii.len(), 5);
    let distinct: std::collections::HashSet<i64> = radii.iter().copied().collect();
    assert!(
        distinct.len() > 1,
        "folds should see different training aggregates"
    );
}

#[test]
fn scored_views_are_self_consistent() {
    let views = suite().split_all(SplitLayer::new(8).expect("valid"));
    let train: Vec<_> = views[1..].iter().collect();
    let model = TrainedAttack::train(&AttackConfig::imp11(), &train, None).expect("train");
    let scored = model.score(&views[0], &ScoreOptions::default());
    // Histogram totals match the pair count.
    let hist_total: u64 = scored.hist.iter().sum();
    assert_eq!(hist_total, scored.pairs_scored);
    // Accuracy at threshold 0 equals the fraction of evaluated truths.
    let evaluated = scored
        .slots
        .iter()
        .filter(|s| s.true_prob.is_some())
        .count() as f64;
    assert!((scored.accuracy_at(0.0) - evaluated / scored.slots.len() as f64).abs() < 1e-12);
    // Each slot's top list only references v-pins of the view.
    for s in &scored.slots {
        for c in &s.top {
            assert!((c.index as usize) < views[0].num_vpins());
            assert!(c.p >= 0.0 && c.p <= 1.0);
            assert!(c.dist >= 0);
        }
    }
}
