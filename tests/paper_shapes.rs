//! Integration tests pinning the qualitative *shapes* of the paper's
//! headline results on a reduced suite: who wins, in which direction, and
//! where the special cases sit. These are the claims EXPERIMENTS.md tracks
//! at full scale.

use splitmfg::attack::attack::{AttackConfig, BaseClassifier, ScoreOptions, TrainedAttack};
use splitmfg::attack::obfuscate::obfuscate_views;
use splitmfg::attack::proximity::{pa_at_threshold, proximity_attack};
use splitmfg::layout::{SplitLayer, Suite};

const SCALE: f64 = 0.05;

fn views(split: u8) -> Vec<splitmfg::layout::SplitView> {
    Suite::ispd2011_like(SCALE)
        .expect("suite generation")
        .split_all(SplitLayer::new(split).expect("valid"))
}

#[test]
fn y_limit_improves_layer8_proximity_attack() {
    // Averaged over all five folds; single-design PA on the tiny test
    // suite is a handful of v-pins and too noisy to compare.
    let vs = views(8);
    let mut rates = Vec::new();
    for cfg in [AttackConfig::imp9(), AttackConfig::imp9().with_y_limit()] {
        let mut sum = 0.0;
        for t in 0..vs.len() {
            let train: Vec<_> = vs
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != t)
                .map(|(_, v)| v)
                .collect();
            let model = TrainedAttack::train(&cfg, &train, None).expect("train");
            let scored = model.score(&vs[t], &ScoreOptions::default());
            sum += proximity_attack(&scored, &vs[t], 0.01, 3).rate();
        }
        rates.push(sum / vs.len() as f64);
    }
    assert!(
        rates[1] + 0.05 >= rates[0],
        "Y-limited PA {:.3} should not clearly trail unlimited {:.3}",
        rates[1],
        rates[0]
    );
}

#[test]
fn rep_tree_bagging_matches_random_forest_quality_much_faster() {
    let vs = views(6);
    let train: Vec<_> = vs[1..].iter().collect();
    let mut cfg_rep = AttackConfig::imp7();
    cfg_rep.base = BaseClassifier::RepTreeBagging { n_trees: 10 };
    let mut cfg_rf = AttackConfig::imp7();
    cfg_rf.base = BaseClassifier::RandomTreeBagging { n_trees: 100 };

    let t0 = std::time::Instant::now();
    let rep = TrainedAttack::train(&cfg_rep, &train, None).expect("train");
    let rep_time = t0.elapsed();
    let t1 = std::time::Instant::now();
    let rf = TrainedAttack::train(&cfg_rf, &train, None).expect("train");
    let rf_time = t1.elapsed();

    let s_rep = rep.score(&vs[0], &ScoreOptions::default());
    let s_rf = rf.score(&vs[0], &ScoreOptions::default());
    // Quality comparable (within 15 accuracy points at max accuracy).
    assert!((s_rep.max_accuracy() - s_rf.max_accuracy()).abs() < 0.15);
    // Training much faster (paper: >10x; assert a conservative 3x).
    assert!(
        rf_time > rep_time * 3,
        "REPTree {rep_time:?} not sufficiently faster than RandomForest {rf_time:?}"
    );
}

#[test]
fn obfuscation_noise_degrades_the_attack() {
    // Averaged over all five folds; a single fold at this reduced scale is
    // too noisy for a clean-vs-noisy comparison.
    let clean = views(6);
    let noisy = obfuscate_views(&clean, 0.02, 9);
    let mut acc = Vec::new();
    for set in [&clean, &noisy] {
        let mut sum = 0.0;
        for t in 0..set.len() {
            let train: Vec<_> = set
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != t)
                .map(|(_, v)| v)
                .collect();
            let model = TrainedAttack::train(&AttackConfig::imp11(), &train, None).expect("train");
            let scored = model.score(&set[t], &ScoreOptions::default());
            sum += scored.accuracy_at(0.5);
        }
        acc.push(sum / set.len() as f64);
    }
    assert!(
        acc[1] < acc[0],
        "noise should reduce accuracy: clean {:.3} vs noisy {:.3}",
        acc[0],
        acc[1]
    );
}

#[test]
fn scalable_variant_evaluates_far_fewer_pairs() {
    let vs = views(4);
    let train: Vec<_> = vs[1..].iter().collect();
    let ml = TrainedAttack::train(&AttackConfig::ml9(), &train, None).expect("train");
    let imp = TrainedAttack::train(&AttackConfig::imp9(), &train, None).expect("train");
    let s_ml = ml.score(&vs[0], &ScoreOptions::default());
    let s_imp = imp.score(&vs[0], &ScoreOptions::default());
    assert!(
        s_imp.pairs_scored < s_ml.pairs_scored,
        "neighborhood must prune the tested pairs ({} vs {})",
        s_imp.pairs_scored,
        s_ml.pairs_scored
    );
    // And the pruning costs only bounded accuracy (the saturation gap).
    assert!(s_imp.max_accuracy() > 0.65);
}

#[test]
fn proximity_attack_beats_fixed_threshold_variant_on_lower_layers() {
    // Validated per-target PA-LoC sizing is the paper's improvement over
    // the fixed t=0.5 PA of [18]; on lower layers the gap is large.
    let vs = views(6);
    let train: Vec<_> = vs[1..].iter().collect();
    let model = TrainedAttack::train(&AttackConfig::imp9(), &train, None).expect("train");
    let scored = model.score(&vs[0], &ScoreOptions::default());
    let fixed = pa_at_threshold(&scored, &vs[0], 0.5, 5).rate();
    // Use a small validated-style fraction directly (validation itself is
    // exercised in the unit tests; here we pin the comparison shape).
    let sized = proximity_attack(&scored, &vs[0], 0.002, 5).rate();
    assert!(
        sized >= fixed,
        "per-target PA-LoC sizing ({sized:.3}) should not trail fixed threshold ({fixed:.3})"
    );
}

#[test]
fn split8_diff_vpin_y_is_zero_for_all_matches() {
    // The routing convention the Y configurations exploit.
    for v in views(8) {
        for i in 0..v.num_vpins() {
            let m = v.true_match(i);
            assert_eq!(
                v.vpins()[i].loc.y,
                v.vpins()[m].loc.y,
                "{} vpin {i}",
                v.name
            );
        }
    }
}

#[test]
fn vpin_populations_scale_like_the_paper() {
    let n8: usize = views(8).iter().map(|v| v.num_vpins()).sum();
    let n6: usize = views(6).iter().map(|v| v.num_vpins()).sum();
    let n4: usize = views(4).iter().map(|v| v.num_vpins()).sum();
    // Paper: 11312 / 59194 / 159732 per-design averages -> ratios ~5.2 / ~14.
    let r6 = n6 as f64 / n8 as f64;
    let r4 = n4 as f64 / n8 as f64;
    assert!((3.5..8.0).contains(&r6), "layer-6/8 ratio {r6:.1}");
    assert!((9.0..20.0).contains(&r4), "layer-4/8 ratio {r4:.1}");
}
