//! The compiled scoring kernel must be invisible in results: for every
//! benchmark and split layer, a full attack run with
//! `Kernel::Compiled` (flattened ensemble + SoA batch feature extraction)
//! produces exactly the `ScoredView` of `Kernel::Reference` — LoC
//! histogram, slot probabilities, and derived curve, bit for bit.

use splitmfg::attack::attack::{AttackConfig, Kernel, ScoreOptions, TrainedAttack};
use splitmfg::attack::Parallelism;
use splitmfg::layout::{SplitLayer, SplitView, Suite};

const SCALE: f64 = 0.02;

fn views(split: u8) -> Vec<SplitView> {
    Suite::ispd2011_like(SCALE)
        .expect("suite generation")
        .split_all(SplitLayer::new(split).expect("valid"))
}

fn opts(kernel: Kernel) -> ScoreOptions {
    ScoreOptions {
        kernel,
        parallelism: Parallelism::Sequential,
        ..ScoreOptions::default()
    }
}

#[test]
fn compiled_kernel_reproduces_reference_on_every_benchmark_and_layer() {
    for split in [4u8, 6, 8] {
        let vs = views(split);
        for t in 0..vs.len() {
            let train: Vec<&SplitView> = vs
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != t)
                .map(|(_, v)| v)
                .collect();
            let cfg = AttackConfig::imp9();
            let model = TrainedAttack::train(&cfg, &train, None).expect("train");
            let reference = model.score(&vs[t], &opts(Kernel::Reference));
            let compiled = model.score(&vs[t], &opts(Kernel::Compiled));
            assert_eq!(
                reference.hist, compiled.hist,
                "layer {split}, target {}: LoC histogram diverged",
                vs[t].name
            );
            assert_eq!(
                reference, compiled,
                "layer {split}, target {}: scored view diverged",
                vs[t].name
            );
            assert_eq!(
                reference.curve().points(),
                compiled.curve().points(),
                "layer {split}, target {}: LoC curve diverged",
                vs[t].name
            );
        }
    }
}

#[test]
fn compiled_kernel_is_also_parallelism_invariant() {
    // The two axes compose: compiled + threads must equal reference +
    // sequential. One layer suffices — the cross-product above covers the
    // kernel axis and parallel_determinism.rs covers the thread axis.
    let vs = views(8);
    let train: Vec<&SplitView> = vs[1..].iter().collect();
    let model = TrainedAttack::train(&AttackConfig::imp11(), &train, None).expect("train");
    let baseline = model.score(&vs[0], &opts(Kernel::Reference));
    let threaded = model.score(
        &vs[0],
        &ScoreOptions {
            kernel: Kernel::Compiled,
            parallelism: Parallelism::Threads(3),
            ..ScoreOptions::default()
        },
    );
    assert_eq!(baseline, threaded);
}
