//! The spatial streaming enumeration must be invisible in results: for
//! every benchmark and split layer, a full attack run with
//! `Enumeration::Spatial` (grid radius / same-track queries, unordered
//! traversal, bulk cell appends) produces exactly the `ScoredView` of the
//! `Enumeration::AllPairs` oracle scan — LoC histogram, slot
//! probabilities, and derived curve, bit for bit. This is the tentpole
//! guarantee that makes paper-scale (`SM_SCALE >= 10`) attacks trustworthy
//! without ever running the quadratic oracle there.

use splitmfg::attack::attack::{AttackConfig, Enumeration, Kernel, ScoreOptions, TrainedAttack};
use splitmfg::attack::Parallelism;
use splitmfg::layout::{SplitLayer, SplitView, Suite};

const SCALE: f64 = 0.02;

fn views(split: u8) -> Vec<SplitView> {
    Suite::ispd2011_like(SCALE)
        .expect("suite generation")
        .split_all(SplitLayer::new(split).expect("valid"))
}

fn opts(enumeration: Enumeration) -> ScoreOptions {
    ScoreOptions {
        enumeration,
        parallelism: Parallelism::Sequential,
        ..ScoreOptions::default()
    }
}

#[test]
fn spatial_enumeration_reproduces_the_oracle_on_every_benchmark_and_layer() {
    for split in [4u8, 6, 8] {
        let vs = views(split);
        // The Y-limited variant only makes sense at the top split layer,
        // where partners share a track; the plain Imp config exercises the
        // radius query everywhere.
        let cfg = if split == 8 {
            AttackConfig::imp9().with_y_limit()
        } else {
            AttackConfig::imp9()
        };
        for t in 0..vs.len() {
            let train: Vec<&SplitView> = vs
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != t)
                .map(|(_, v)| v)
                .collect();
            let model = TrainedAttack::train(&cfg, &train, None).expect("train");
            let oracle = model.score(&vs[t], &opts(Enumeration::AllPairs));
            let spatial = model.score(&vs[t], &opts(Enumeration::Spatial));
            assert_eq!(
                oracle.hist, spatial.hist,
                "layer {split}, target {}: LoC histogram diverged",
                vs[t].name
            );
            assert_eq!(
                oracle, spatial,
                "layer {split}, target {}: scored view diverged",
                vs[t].name
            );
            assert_eq!(
                oracle.curve().points(),
                spatial.curve().points(),
                "layer {split}, target {}: LoC curve diverged",
                vs[t].name
            );
        }
    }
}

#[test]
fn enumeration_kernel_and_parallelism_axes_compose() {
    // All three execution axes at once: spatial + compiled + threads must
    // equal all-pairs + reference + sequential. One layer suffices — the
    // cross-product above covers the enumeration axis, kernel_parity.rs
    // the kernel axis, and parallel_determinism.rs the thread axis.
    let vs = views(6);
    let train: Vec<&SplitView> = vs[1..].iter().collect();
    let model = TrainedAttack::train(&AttackConfig::imp11(), &train, None).expect("train");
    let baseline = model.score(
        &vs[0],
        &ScoreOptions {
            enumeration: Enumeration::AllPairs,
            kernel: Kernel::Reference,
            parallelism: Parallelism::Sequential,
            ..ScoreOptions::default()
        },
    );
    let streamed = model.score(
        &vs[0],
        &ScoreOptions {
            enumeration: Enumeration::Spatial,
            kernel: Kernel::Compiled,
            parallelism: Parallelism::Threads(3),
            ..ScoreOptions::default()
        },
    );
    assert_eq!(baseline, streamed);
}
